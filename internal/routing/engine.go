// Package routing computes the BGP routes that vantage points observe
// over a topology.Graph: Gao-Rexford valley-free propagation with the
// standard decision process (customer > peer > provider, then AS-path
// length, then a deterministic tie-break), honoring every policy the
// topology expresses — origin selective announce, origin and transit
// prepending, and transit selective export — plus a churn overlay that
// perturbs those policies between snapshots.
//
// The engine is exact but lazy: customer routes are propagated upward
// with a Dijkstra pass (they are always preferred, so the upward pass is
// self-contained), peer routes are a single-hop exchange, and
// provider-learned routes are resolved on demand by recursing up the
// acyclic provider DAG. Only the vantage points' routes are ever fully
// materialized, which keeps per-unit cost at a few hundred operations.
package routing

import (
	"net/netip"

	"repro/internal/aspath"
	"repro/internal/prefixset"
	"repro/internal/topology"
)

// Class is the route preference class, ascending.
type Class uint8

// Preference classes (higher wins).
const (
	ClassNone     Class = iota
	ClassProvider       // learned from a provider
	ClassPeer           // learned from a peer
	ClassCustomer       // learned from a customer
	ClassOrigin         // locally originated
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassProvider:
		return "provider"
	case ClassPeer:
		return "peer"
	case ClassCustomer:
		return "customer"
	case ClassOrigin:
		return "origin"
	default:
		return "none"
	}
}

// ExportKey addresses one transit export decision.
type ExportKey struct {
	ASN      uint32
	UnitID   int
	Neighbor uint32
}

// Overlay perturbs the graph's policies without regenerating it — the
// churn mechanism behind stability, split, and update analyses.
type Overlay struct {
	// AnnounceOverride replaces a unit's origin announce policy.
	AnnounceOverride map[int]map[uint32]topology.AnnouncePolicy
	// ExportFlip inverts the transit export decision for a key.
	ExportFlip map[ExportKey]bool
	// VPSalt changes tie-breaking at an AS (a local policy change: the
	// AS prefers a different equally-good neighbor).
	VPSalt map[uint32]uint64
	// WithdrawnUnits marks units entirely withdrawn (outage).
	WithdrawnUnits map[int]bool
	// PrefixMoves reassigns a prefix to another unit's policy (the
	// operator applied different traffic engineering to one prefix) —
	// the mechanism behind atom composition churn.
	PrefixMoves map[netip.Prefix]int
	// VPShift gives a vantage point a per-prefix route-shift token: a
	// small share (VPShiftShare) of the prefixes it carries use its
	// runner-up route instead of the best one — a local, per-prefix
	// policy change (hot-potato / localpref tweak) that splits atoms
	// visibly only at that VP (§4.4.1's localized splits). The token is
	// version-dependent: each VP event re-draws the churning portion.
	VPShift map[uint32]uint64
	// VPSticky is the version-independent component of the shift set:
	// most of a VP's idiosyncratic routes stay idiosyncratic across its
	// events, so stability decay saturates instead of compounding.
	VPSticky map[uint32]uint64
	// VPShiftShare is the fraction of prefixes a shifted VP re-routes.
	VPShiftShare float64
}

// MoveSet is a prepared index over an overlay's PrefixMoves.
type MoveSet struct {
	away map[netip.Prefix]bool
	into map[int][]netip.Prefix

	// cache memoizes UnitPrefixes per unit: callers ask for the same
	// unit once per VP, and the effective set is fixed for the
	// MoveSet's lifetime. Not safe for concurrent use (MoveSets are
	// built per goroutine, like Engines).
	cache map[int][]netip.Prefix
}

// BuildMoveSet indexes the overlay's prefix moves (nil-safe).
func BuildMoveSet(ov *Overlay) *MoveSet {
	ms := &MoveSet{away: map[netip.Prefix]bool{}, into: map[int][]netip.Prefix{}}
	if ov == nil {
		return ms
	}
	for pfx, target := range ov.PrefixMoves {
		ms.away[pfx] = true
		//atomlint:ignore determinism every into-bucket is sorted by the loop below
		ms.into[target] = append(ms.into[target], pfx)
	}
	for _, ps := range ms.into {
		prefixset.SortPrefixes(ps)
	}
	return ms
}

// UnitPrefixes returns the unit's effective prefix set: home prefixes
// not moved away, plus prefixes moved in.
func (ms *MoveSet) UnitPrefixes(u *topology.PolicyGroup) []netip.Prefix {
	moved := ms.into[u.ID]
	if len(ms.away) == 0 && len(moved) == 0 {
		return u.Prefixes
	}
	if out, ok := ms.cache[u.ID]; ok {
		return out
	}
	out := make([]netip.Prefix, 0, len(u.Prefixes)+len(moved))
	for _, p := range u.Prefixes {
		if !ms.away[p] {
			out = append(out, p)
		}
	}
	out = append(out, moved...)
	if ms.cache == nil {
		ms.cache = map[int][]netip.Prefix{}
	}
	ms.cache[u.ID] = out
	return out
}

// VPRoute is the route a vantage point announces to a collector.
type VPRoute struct {
	// Path includes the vantage point's own ASN first and the origin
	// last (the path as it appears in collector data).
	Path  aspath.Seq
	Class Class
	Cost  int
}

// Engine computes routes for one graph + overlay. Not safe for
// concurrent use; create one engine per goroutine.
type Engine struct {
	G  *topology.Graph
	Ov *Overlay

	idx  map[uint32]int32
	asns []uint32
	as   []*topology.AS

	// Per-unit scratch, stamp-versioned to avoid O(n) clears.
	stamp    []uint32
	cur      uint32
	custCost []int32
	custPar  []int32
	custPrep []int8

	peerStamp []uint32
	peerCost  []int32
	peerPar   []int32
	peerPrep  []int8

	bestStamp []uint32
	bestKind  []Class
	bestCost  []int32
	bestPar   []int32
	bestPrep  []int8

	pathStamp []uint32
	pathMemo  [][]uint32 // memo of pathBest per node

	custPathStamp []uint32
	custPathMemo  [][]uint32

	custOrder []int32 // nodes that got customer routes, pop order

	settledStamp []uint32 // Dijkstra settled set, stamp-versioned
	q            []pqItem // Dijkstra heap, reused across units

	// pathArena backs the per-unit path memos: memos die with the unit
	// stamp, so the arena rewinds in ComputeUnit and reconstruction
	// stops allocating once the high-water chunk is in place. Chunk
	// rollover mid-unit is fine — live memos keep the old chunk alive.
	pathArena []uint32

	// emitArena backs the Seq results RouteAt/AltRouteAt hand out.
	// Unlike pathArena it never rewinds: callers (feed builders) retain
	// the returned paths across units, so a full block is simply
	// abandoned to its owners and a fresh one started. This amortizes
	// the dominant per-(unit, VP) result allocation into one allocation
	// per ~16Ki hops.
	emitArena []uint32

	unit   *topology.PolicyGroup
	origin int32
}

// NewEngine builds an engine over g with an optional overlay.
func NewEngine(g *topology.Graph, ov *Overlay) *Engine {
	n := len(g.ASes)
	e := &Engine{
		G: g, Ov: ov,
		idx:  make(map[uint32]int32, n),
		asns: make([]uint32, n),
		as:   make([]*topology.AS, n),

		stamp:    make([]uint32, n),
		custCost: make([]int32, n),
		custPar:  make([]int32, n),
		custPrep: make([]int8, n),

		peerStamp: make([]uint32, n),
		peerCost:  make([]int32, n),
		peerPar:   make([]int32, n),
		peerPrep:  make([]int8, n),

		bestStamp: make([]uint32, n),
		bestKind:  make([]Class, n),
		bestCost:  make([]int32, n),
		bestPar:   make([]int32, n),
		bestPrep:  make([]int8, n),

		pathStamp: make([]uint32, n),
		pathMemo:  make([][]uint32, n),

		custPathStamp: make([]uint32, n),
		custPathMemo:  make([][]uint32, n),

		settledStamp: make([]uint32, n),
	}
	for i, a := range g.ASes {
		e.idx[a.ASN] = int32(i)
		e.asns[i] = a.ASN
		e.as[i] = a
	}
	return e
}

// announce returns the unit's effective announce policy.
func (e *Engine) announce(u *topology.PolicyGroup) map[uint32]topology.AnnouncePolicy {
	if e.Ov != nil {
		if ov, ok := e.Ov.AnnounceOverride[u.ID]; ok {
			return ov
		}
	}
	return u.Announce
}

// exports evaluates the transit export decision with overlay flips.
func (e *Engine) exports(from *topology.AS, u *topology.PolicyGroup, to uint32) (bool, int) {
	ok, prep := e.G.Exports(from, u, to)
	if e.Ov != nil && e.Ov.ExportFlip[ExportKey{from.ASN, u.ID, to}] {
		ok = !ok
		if ok {
			prep = 0
		}
	}
	return ok, prep
}

// tiebreak returns the comparison key for choosing between equal-cost
// candidates at node x: normally the neighbor ASN (lowest wins), salted
// when the overlay marks x as having changed its local preference.
func (e *Engine) tiebreak(x int32, neighborASN uint32) uint64 {
	if e.Ov != nil {
		if salt, ok := e.Ov.VPSalt[e.asns[x]]; ok && salt != 0 {
			return h64mix(uint64(neighborASN), salt)
		}
	}
	return uint64(neighborASN)
}

func h64mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// relationship constants for seed classification.
func isProviderOf(a *topology.AS, asn uint32) bool {
	for _, p := range a.Providers {
		if p == asn {
			return true
		}
	}
	return false
}

func isPeerOf(a *topology.AS, asn uint32) bool {
	for _, p := range a.Peers {
		if p == asn {
			return true
		}
	}
	return false
}

// pqItem is a Dijkstra heap entry.
type pqItem struct {
	cost int32
	key  uint64
	node int32
}

func pqLess(a, b pqItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.node < b.node
}

// pushQ/popQ implement the Dijkstra heap directly on the engine's
// reused slice: container/heap's any-boxed interface allocates on every
// Push/Pop, which dominated the per-unit allocation profile.
func (e *Engine) pushQ(it pqItem) {
	q := append(e.q, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !pqLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	e.q = q
}

func (e *Engine) popQ() pqItem {
	q := e.q
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < n && pqLess(q[l], q[s]) {
			s = l
		}
		if r < n && pqLess(q[r], q[s]) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	e.q = q
	return top
}

// ComputeUnit prepares routes for one unit. Subsequent RouteAt calls
// answer for this unit until the next ComputeUnit.
func (e *Engine) ComputeUnit(u *topology.PolicyGroup) {
	e.cur++
	e.unit = u
	e.custOrder = e.custOrder[:0]
	e.pathArena = e.pathArena[:0]
	oi, ok := e.idx[u.Origin]
	if !ok {
		e.origin = -1
		return
	}
	e.origin = oi
	if e.Ov != nil && e.Ov.WithdrawnUnits[u.ID] {
		e.origin = -1
		return
	}

	// Origin's own route.
	e.stamp[oi] = e.cur
	e.custCost[oi] = 0
	e.custPar[oi] = -1
	e.custPrep[oi] = 0
	e.custOrder = append(e.custOrder, oi)

	// Seeds: the origin's announcements. Providers receive customer-class
	// routes (and enter the upward Dijkstra); peers receive peer-class.
	origin := e.as[oi]
	e.q = e.q[:0]
	for n, pol := range e.announce(u) {
		ni, ok := e.idx[n]
		if !ok {
			continue
		}
		cost := int32(1 + pol.Prepend)
		switch {
		case isProviderOf(origin, n):
			if e.better(ni, cost, oi, e.custStampOK(ni), e.custCost, e.custPar) {
				e.stamp[ni] = e.cur
				e.custCost[ni] = cost
				e.custPar[ni] = oi
				e.custPrep[ni] = int8(pol.Prepend)
				e.pushQ(pqItem{cost: cost, key: e.tiebreak(ni, origin.ASN), node: ni})
			}
		case isPeerOf(origin, n):
			if e.peerBetter(ni, cost, oi) {
				e.peerStamp[ni] = e.cur
				e.peerCost[ni] = cost
				e.peerPar[ni] = oi
				e.peerPrep[ni] = int8(pol.Prepend)
			}
		}
	}

	// Phase 1: customer routes climb the provider DAG.
	for len(e.q) > 0 {
		it := e.popQ()
		x := it.node
		if e.settledStamp[x] == e.cur || e.stamp[x] != e.cur || e.custCost[x] != it.cost {
			continue
		}
		e.settledStamp[x] = e.cur
		e.custOrder = append(e.custOrder, x)
		ax := e.as[x]
		for _, pASN := range ax.Providers {
			pi, ok := e.idx[pASN]
			if !ok || e.settledStamp[pi] == e.cur {
				continue
			}
			expOK, prep := e.exports(ax, u, pASN)
			if !expOK {
				continue
			}
			cost := e.custCost[x] + 1 + int32(prep)
			if e.betterCust(pi, cost, x) {
				e.stamp[pi] = e.cur
				e.custCost[pi] = cost
				e.custPar[pi] = x
				e.custPrep[pi] = int8(prep)
				e.pushQ(pqItem{cost: cost, key: e.tiebreak(pi, ax.ASN), node: pi})
			}
		}
	}

	// Phase 2: one-hop peer exchange of customer-class routes.
	for _, x := range e.custOrder {
		if x == oi {
			continue // origin's peer announcements were seeded above
		}
		ax := e.as[x]
		for _, prASN := range ax.Peers {
			pi, ok := e.idx[prASN]
			if !ok {
				continue
			}
			expOK, prep := e.exports(ax, u, prASN)
			if !expOK {
				continue
			}
			cost := e.custCost[x] + 1 + int32(prep)
			if e.peerBetter(pi, cost, x) {
				e.peerStamp[pi] = e.cur
				e.peerCost[pi] = cost
				e.peerPar[pi] = x
				e.peerPrep[pi] = int8(prep)
			}
		}
	}
}

func (e *Engine) custStampOK(x int32) bool { return e.stamp[x] == e.cur }

// better reports whether (cost, parent) beats the stored customer route
// at x, comparing (cost, tiebreak(parentASN)).
func (e *Engine) better(x int32, cost int32, par int32, has bool, costs []int32, pars []int32) bool {
	if !has {
		return true
	}
	if cost != costs[x] {
		return cost < costs[x]
	}
	return e.tiebreak(x, e.asns[par]) < e.tiebreak(x, e.asns[pars[x]])
}

func (e *Engine) betterCust(x, cost, par int32) bool {
	return e.better(x, cost, par, e.stamp[x] == e.cur, e.custCost, e.custPar)
}

func (e *Engine) peerBetter(x, cost, par int32) bool {
	return e.better(x, cost, par, e.peerStamp[x] == e.cur, e.peerCost, e.peerPar)
}

// bestAt resolves the decision process at node x for the current unit:
// customer route if any, else peer, else the best provider-learned
// route (recursing up the acyclic provider DAG). Returns false if x has
// no route.
func (e *Engine) bestAt(x int32) bool {
	if e.bestStamp[x] == e.cur {
		return e.bestKind[x] != ClassNone
	}
	e.bestStamp[x] = e.cur
	e.bestKind[x] = ClassNone

	if e.stamp[x] == e.cur { // customer-class (or origin)
		if x == e.origin {
			e.bestKind[x] = ClassOrigin
		} else {
			e.bestKind[x] = ClassCustomer
		}
		e.bestCost[x] = e.custCost[x]
		e.bestPar[x] = e.custPar[x]
		e.bestPrep[x] = e.custPrep[x]
		return true
	}
	if e.peerStamp[x] == e.cur {
		e.bestKind[x] = ClassPeer
		e.bestCost[x] = e.peerCost[x]
		e.bestPar[x] = e.peerPar[x]
		e.bestPrep[x] = e.peerPrep[x]
		return true
	}
	// Provider-learned: the origin always exports to its customers; a
	// transit exports its best route to customers subject to policy.
	ax := e.as[x]
	haveBest := false
	var bCost int32
	var bPar int32
	var bPrep int8
	for _, pASN := range ax.Providers {
		pi, ok := e.idx[pASN]
		if !ok {
			continue
		}
		if !e.bestAt(pi) {
			continue
		}
		ap := e.as[pi]
		var expOK bool
		var prep int
		if pi == e.origin {
			expOK, prep = true, 0 // origin always serves its customers
		} else {
			expOK, prep = e.exports(ap, e.unit, ax.ASN)
		}
		if !expOK {
			continue
		}
		cost := e.bestCost[pi] + 1 + int32(prep)
		if !haveBest || cost < bCost ||
			(cost == bCost && e.tiebreak(x, e.asns[pi]) < e.tiebreak(x, e.asns[bPar])) {
			haveBest = true
			bCost = cost
			bPar = pi
			bPrep = int8(prep)
		}
	}
	if !haveBest {
		return false
	}
	e.bestKind[x] = ClassProvider
	e.bestCost[x] = bCost
	e.bestPar[x] = bPar
	e.bestPrep[x] = bPrep
	return true
}

// carve returns an empty capacity-n slice cut from the path arena. The
// full slice expression keeps later carves from clobbering it on append.
func (e *Engine) carve(n int) []uint32 {
	if len(e.pathArena)+n > cap(e.pathArena) {
		sz := 1 << 15
		if n > sz {
			sz = n
		}
		e.pathArena = make([]uint32, 0, sz)
	}
	m := len(e.pathArena)
	s := e.pathArena[m:m:m+n]
	e.pathArena = e.pathArena[:m+n]
	return s
}

// emitCarve returns an empty capacity-n Seq cut from the retained emit
// arena (see the field comment for the lifetime contract).
func (e *Engine) emitCarve(n int) aspath.Seq {
	if len(e.emitArena)+n > cap(e.emitArena) {
		sz := 1 << 14
		if n > sz {
			sz = n
		}
		e.emitArena = make([]uint32, 0, sz)
	}
	m := len(e.emitArena)
	s := e.emitArena[m : m : m+n]
	e.emitArena = e.emitArena[:m+n]
	return s
}

// pathCust reconstructs the customer-class path at x (not including x).
func (e *Engine) pathCust(x int32) []uint32 {
	if x == e.origin {
		return nil
	}
	if e.custPathStamp[x] == e.cur {
		return e.custPathMemo[x]
	}
	par := e.custPar[x]
	parPath := e.pathCust(par)
	path := e.carve(len(parPath) + 1 + int(e.custPrep[x]))
	for i := 0; i <= int(e.custPrep[x]); i++ {
		path = append(path, e.asns[par])
	}
	path = append(path, parPath...)
	e.custPathStamp[x] = e.cur
	e.custPathMemo[x] = path
	return path
}

// pathBest reconstructs the best path at x (not including x).
func (e *Engine) pathBest(x int32) []uint32 {
	if e.pathStamp[x] == e.cur {
		return e.pathMemo[x]
	}
	var path []uint32
	switch e.bestKind[x] {
	case ClassOrigin:
		path = nil
	case ClassCustomer:
		path = e.pathCust(x)
	case ClassPeer:
		par := e.peerPar[x]
		parPath := e.pathCust(par)
		path = e.carve(len(parPath) + 1 + int(e.peerPrep[x]))
		for i := 0; i <= int(e.peerPrep[x]); i++ {
			path = append(path, e.asns[par])
		}
		path = append(path, parPath...)
	case ClassProvider:
		par := e.bestPar[x]
		parPath := e.pathBest(par)
		path = e.carve(len(parPath) + 1 + int(e.bestPrep[x]))
		for i := 0; i <= int(e.bestPrep[x]); i++ {
			path = append(path, e.asns[par])
		}
		path = append(path, parPath...)
	}
	e.pathStamp[x] = e.cur
	e.pathMemo[x] = path
	return path
}

// RouteAt returns the route the given AS would announce to a collector
// for the current unit, with ok=false if the AS has no route. The path
// includes the AS itself first.
func (e *Engine) RouteAt(asn uint32) (VPRoute, bool) {
	x, ok := e.idx[asn]
	if !ok || e.origin < 0 {
		return VPRoute{}, false
	}
	if !e.bestAt(x) {
		return VPRoute{}, false
	}
	inner := e.pathBest(x)
	path := e.emitCarve(len(inner) + 1)
	path = append(path, asn)
	path = append(path, inner...)
	return VPRoute{Path: path, Class: e.bestKind[x], Cost: int(e.bestCost[x])}, true
}

// AltRouteAt returns the runner-up route at the given AS for the
// current unit: the best candidate at the final selection step other
// than the one chosen — the route the AS would fall back to after a
// local preference change. ok=false if there is no alternative.
func (e *Engine) AltRouteAt(asn uint32) (VPRoute, bool) {
	x, ok := e.idx[asn]
	if !ok || e.origin < 0 || !e.bestAt(x) {
		return VPRoute{}, false
	}
	if e.bestKind[x] == ClassOrigin {
		// Self-originated: any "alternative" via a provider would loop
		// back through the origin's own ASN, which BGP rejects.
		return VPRoute{}, false
	}
	chosenKind, chosenPar := e.bestKind[x], e.bestPar[x]
	type cand struct {
		kind Class
		cost int32
		par  int32
		prep int8
	}
	var best cand
	haveBest := false
	consider := func(c cand) {
		if c.kind == chosenKind && c.par == chosenPar {
			return
		}
		if !haveBest ||
			c.kind > best.kind ||
			(c.kind == best.kind && c.cost < best.cost) ||
			(c.kind == best.kind && c.cost == best.cost &&
				e.tiebreak(x, e.asns[c.par]) < e.tiebreak(x, e.asns[best.par])) {
			best = c
			haveBest = true
		}
	}
	if e.stamp[x] == e.cur && x != e.origin {
		consider(cand{kind: ClassCustomer, cost: e.custCost[x], par: e.custPar[x], prep: e.custPrep[x]})
	}
	if e.peerStamp[x] == e.cur {
		consider(cand{kind: ClassPeer, cost: e.peerCost[x], par: e.peerPar[x], prep: e.peerPrep[x]})
	}
	ax := e.as[x]
	for _, pASN := range ax.Providers {
		pi, ok := e.idx[pASN]
		if !ok || !e.bestAt(pi) {
			continue
		}
		var expOK bool
		var prep int
		if pi == e.origin {
			expOK, prep = true, 0
		} else {
			expOK, prep = e.exports(e.as[pi], e.unit, ax.ASN)
		}
		if !expOK {
			continue
		}
		consider(cand{kind: ClassProvider, cost: e.bestCost[pi] + 1 + int32(prep), par: pi, prep: int8(prep)})
	}
	if !haveBest {
		return VPRoute{}, false
	}
	// Reconstruct the alternative's path. inner only lives until it is
	// copied into the result, so it can come from the unit arena too.
	var inner []uint32
	emit := func(par int32, prep int8, parPath []uint32) {
		inner = e.carve(len(parPath) + 1 + int(prep))
		for i := 0; i <= int(prep); i++ {
			inner = append(inner, e.asns[par])
		}
		inner = append(inner, parPath...)
	}
	switch best.kind {
	case ClassCustomer:
		inner = e.pathCust(x)
	case ClassPeer:
		emit(best.par, best.prep, e.pathCust(best.par))
	case ClassProvider:
		emit(best.par, best.prep, e.pathBest(best.par))
	}
	path := e.emitCarve(len(inner) + 1)
	path = append(path, asn)
	path = append(path, inner...)
	return VPRoute{Path: path, Class: best.kind, Cost: int(best.cost)}, true
}

// PathsAt computes routes for every vantage point for one unit:
// result[i] corresponds to vps[i]; missing routes have a nil Path.
func (e *Engine) PathsAt(u *topology.PolicyGroup, vps []uint32) []VPRoute {
	e.ComputeUnit(u)
	out := make([]VPRoute, len(vps))
	for i, vp := range vps {
		if r, ok := e.RouteAt(vp); ok {
			out[i] = r
		}
	}
	return out
}

// AltPathsAt computes runner-up routes for every vantage point for the
// unit most recently passed to PathsAt/ComputeUnit.
func (e *Engine) AltPathsAt(vps []uint32) []VPRoute {
	out := make([]VPRoute, len(vps))
	for i, vp := range vps {
		if r, ok := e.AltRouteAt(vp); ok {
			out[i] = r
		}
	}
	return out
}
