package routing

import (
	"math"
	"net/netip"
	"slices"

	"repro/internal/topology"
)

// ChurnModel is a deterministic event process that perturbs routing
// policies over continuous time (measured in days since the snapshot
// epoch). Each unit and each vantage point has its own event clock —
// evenly spaced events with a random phase and a heavy-tailed per-entity
// rate — so any two instants map to overlays whose differences are
// exactly the events between them. This is what stability (CAM/MPM),
// split-observer, and update-correlation analyses consume.
type ChurnModel struct {
	Seed uint64
	// UnitEventRate is the mean policy-event rate per unit per day.
	UnitEventRate float64
	// TransitFlipShare is the share of unit events that are transit
	// export flips (localized) rather than origin announce changes.
	TransitFlipShare float64
	// VPEventRate is the mean local-preference event rate per vantage
	// point per day. Per-VP rates are heavy-tailed: a few flappy VPs
	// dominate, reproducing the paper's single-VP split concentration.
	VPEventRate float64
	// PrefixMobileShare is the share of prefixes that are "mobile":
	// their TE assignment toggles between sibling groups on a daily
	// cadence. The remainder move only at PrefixBaseMoveRate. This
	// bimodal process reproduces the paper's fast-then-flat stability
	// decay: atoms that survive 8 hours mostly survive the week.
	PrefixMobileShare float64
	// PrefixBaseMoveRate is the background reassignment rate
	// (events/day) for non-mobile prefixes.
	PrefixBaseMoveRate float64
	// VPShiftShare is the fraction of carried prefixes a VP re-routes
	// to its runner-up path after a local-preference event — the source
	// of single-VP-visible atom splits.
	VPShiftShare float64
	// RefreshRate is the per-signature rate (events/day) of attribute
	// refreshes: the origin re-announces a whole policy group with
	// unchanged AS paths (MED/community tweaks, session maintenance).
	// Refreshes never alter snapshots or stability — they only produce
	// the atom-sized UPDATE batches that dominate real update streams
	// and drive the Fig 3 correlation.
	RefreshRate float64
}

// RefreshVersion counts attribute-refresh events for a unit's signature
// before time t.
func (m ChurnModel) RefreshVersion(u *topology.PolicyGroup, t float64) int {
	rate := m.refreshRate(u.SigID)
	return version(rate, t, m.Seed, 0xc4fa, uint64(u.SigID))
}

// RefreshEventTime returns the time of the k-th refresh (k ≥ 1).
func (m ChurnModel) RefreshEventTime(u *topology.PolicyGroup, k int) float64 {
	rate := m.refreshRate(u.SigID)
	if rate <= 0 {
		return math.Inf(1)
	}
	phase := unitf(m.Seed, 0xc4fa, uint64(u.SigID))
	return (float64(k) - phase) / rate
}

func (m ChurnModel) refreshRate(sigID int) float64 {
	u := unitf(m.Seed, 0xc4fb, uint64(sigID))
	return m.RefreshRate * 3 * u * u
}

// unitRate returns the per-signature event rate (heavy-tailed around
// the mean). Events are keyed by policy signature, not unit ID: groups
// configured identically change together.
func (m ChurnModel) unitRate(sigID int) float64 {
	u := unitf(m.Seed, 0xc4e1, uint64(sigID))
	// Quadratic tilt: mean 1, most units below, a few hot ones.
	return m.UnitEventRate * 3 * u * u
}

// vpRate returns the per-VP event rate. The tail is much heavier than
// for units: rate ∝ u^6 keeps most VPs nearly silent while one or two
// flap constantly.
func (m ChurnModel) vpRate(vp uint32) float64 {
	u := unitf(m.Seed, 0xc4e2, uint64(vp))
	return m.VPEventRate * 7 * math.Pow(u, 6)
}

// version counts events before time t for an entity with the given rate
// and phase label.
func version(rate, t float64, seed uint64, labels ...uint64) int {
	if rate <= 0 || t <= 0 {
		return 0
	}
	// Stack-backed key: append([]uint64{seed}, ...) would grow through
	// the heap on every call, and this runs per unit per VP per frame.
	var key [4]uint64
	k := append(key[:0], seed)
	k = append(k, labels...)
	phase := unitf(k...)
	v := int(rate*t + phase)
	if v < 0 {
		return 0
	}
	return v
}

// UnitVersion returns the policy version of a unit at time t (days).
// Versions advance per policy signature: sibling groups with identical
// configured policy share a clock.
func (m ChurnModel) UnitVersion(u *topology.PolicyGroup, t float64) int {
	return version(m.unitRate(u.SigID), t, m.Seed, 0xc4e3, uint64(u.SigID))
}

// UnitEventTime returns the time (days) of a unit's k-th event (k ≥ 1),
// the inverse of UnitVersion.
func (m ChurnModel) UnitEventTime(u *topology.PolicyGroup, k int) float64 {
	rate := m.unitRate(u.SigID)
	if rate <= 0 {
		return math.Inf(1)
	}
	phase := unitf(m.Seed, 0xc4e3, uint64(u.SigID))
	return (float64(k) - phase) / rate
}

// VPVersion returns the local-pref version of a VP at time t.
func (m ChurnModel) VPVersion(vp uint32, t float64) int {
	return version(m.vpRate(vp), t, m.Seed, 0xc4e4, uint64(vp))
}

// VPEventTime returns the time (days) of a VP's k-th event (k ≥ 1).
func (m ChurnModel) VPEventTime(vp uint32, k int) float64 {
	rate := m.vpRate(vp)
	if rate <= 0 {
		return math.Inf(1)
	}
	phase := unitf(m.Seed, 0xc4e4, uint64(vp))
	return (float64(k) - phase) / rate
}

// VPSaltAt returns the tie-break salt of a VP at version v (0 = none).
func (m ChurnModel) VPSaltAt(vp uint32, v int) uint64 {
	if v <= 0 {
		return 0
	}
	return hh(m.Seed, 0xc4e5, uint64(vp), uint64(v))
}

// ApplyUnitVersion mutates ov to reflect unit u at policy version v,
// removing any effect of version vPrev first. Versions are absolute:
// the overlay for a unit always reflects exactly one version's mutation
// (matching OverlayAt's semantics).
func (m ChurnModel) ApplyUnitVersion(g *topology.Graph, ov *Overlay, u *topology.PolicyGroup, vPrev, v int) {
	if vPrev > 0 {
		m.clearUnitVersion(g, ov, u, vPrev)
	}
	if v > 0 {
		m.applyUnitEvent(g, ov, u, v)
	}
}

// clearUnitVersion removes the mutation that version v installed.
func (m ChurnModel) clearUnitVersion(g *topology.Graph, ov *Overlay, u *topology.PolicyGroup, v int) {
	kind := unitf(m.Seed, 0xc4e6, uint64(u.SigID), uint64(v))
	if kind < m.TransitFlipShare {
		if key, ok := m.flipKey(g, u, v); ok {
			delete(ov.ExportFlip, key)
		}
		return
	}
	delete(ov.AnnounceOverride, u.ID)
}

// flipKey recomputes the export-flip key version v would install.
func (m ChurnModel) flipKey(g *topology.Graph, u *topology.PolicyGroup, v int) (ExportKey, bool) {
	origin := g.AS(u.Origin)
	if origin == nil || len(origin.Providers) == 0 {
		return ExportKey{}, false
	}
	p := origin.Providers[pickn(len(origin.Providers), m.Seed, 0xc4e7, uint64(u.SigID), uint64(v))]
	tr := g.AS(p)
	if tr == nil {
		return ExportKey{}, false
	}
	neighbors := make([]uint32, 0, len(tr.Providers)+len(tr.Peers))
	neighbors = append(neighbors, tr.Providers...)
	neighbors = append(neighbors, tr.Peers...)
	if len(neighbors) == 0 {
		return ExportKey{}, false
	}
	n := neighbors[pickn(len(neighbors), m.Seed, 0xc4e8, uint64(u.SigID), uint64(v))]
	return ExportKey{ASN: tr.ASN, UnitID: u.ID, Neighbor: n}, true
}

// OverlayAt materializes the overlay for time t: for every unit with a
// nonzero version, one mutation keyed by (unit, version); for every VP
// with a nonzero version, a tie-break salt; for every moved prefix, its
// current destination group.
func (m ChurnModel) OverlayAt(g *topology.Graph, t float64, vps []uint32) *Overlay {
	ov := &Overlay{
		AnnounceOverride: make(map[int]map[uint32]topology.AnnouncePolicy),
		ExportFlip:       make(map[ExportKey]bool),
		VPSalt:           make(map[uint32]uint64),
		VPShift:          make(map[uint32]uint64),
		VPSticky:         make(map[uint32]uint64),
		PrefixMoves:      make(map[netip.Prefix]int),
	}
	for _, u := range g.Groups {
		v := m.UnitVersion(u, t)
		if v == 0 {
			continue
		}
		m.applyUnitEvent(g, ov, u, v)
	}
	for _, vp := range vps {
		v := m.VPVersion(vp, t)
		if v == 0 {
			continue
		}
		ov.VPSalt[vp] = hh(m.Seed, 0xc4e5, uint64(vp), uint64(v))
		ov.VPShift[vp] = hh(m.Seed, 0xc4f5, uint64(vp), uint64(v))
		ov.VPSticky[vp] = hh(m.Seed, 0xc4f6, uint64(vp))
	}
	ov.VPShiftShare = m.VPShiftShare
	m.applyPrefixMoves(g, ov, t)
	return ov
}

// PrefixMoveVersion returns the reassignment version of one prefix
// (identified by unit + position) at time t.
func (m ChurnModel) PrefixMoveVersion(unitID, prefixIdx int, t float64) int {
	rate := m.prefixMoveRate(unitID, prefixIdx)
	return version(rate, t, m.Seed, 0xc4f0, uint64(unitID), uint64(prefixIdx))
}

// PrefixMoveTime returns the time of the k-th reassignment event.
func (m ChurnModel) PrefixMoveTime(unitID, prefixIdx, k int) float64 {
	rate := m.prefixMoveRate(unitID, prefixIdx)
	if rate <= 0 {
		return math.Inf(1)
	}
	phase := unitf(m.Seed, 0xc4f0, uint64(unitID), uint64(prefixIdx))
	return (float64(k) - phase) / rate
}

func (m ChurnModel) prefixMoveRate(unitID, prefixIdx int) float64 {
	u := unitf(m.Seed, 0xc4f1, uint64(unitID), uint64(prefixIdx))
	if u < m.PrefixMobileShare {
		// Mobile: toggles one to three times a day; the spread in rates
		// decorrelates toggle parity across snapshot offsets.
		return 1.0 + 2.0*unitf(m.Seed, 0xc4f7, uint64(unitID), uint64(prefixIdx))
	}
	return m.PrefixBaseMoveRate
}

// MoveTarget returns the destination unit for a prefix's version-v
// reassignment (its home unit when v is even-dispersed back, or no
// move). ok=false means the prefix stays home at this version.
func (m ChurnModel) MoveTarget(g *topology.Graph, u *topology.PolicyGroup, prefixIdx, v int) (int, bool) {
	if v == 0 {
		return 0, false
	}
	origin := g.AS(u.Origin)
	if origin == nil {
		return 0, false
	}
	// Candidate sibling groups of the same family. Groups with the same
	// announce policy are strongly preferred: a TE tweak reassigns a
	// prefix to the most similar policy bucket, so the resulting atom
	// split is visible only where transit-level policy differs — the
	// paper's observation that most splits are localized to few VPs.
	var similar, other []int
	for _, grp := range origin.Groups {
		if grp.ID == u.ID || grp.V6 != u.V6 {
			continue
		}
		if sameAnnounce(u, grp) {
			similar = append(similar, grp.ID)
		} else {
			other = append(other, grp.ID)
		}
	}
	siblings := similar
	if len(siblings) == 0 || (len(other) > 0 && unitf(m.Seed, 0xc4f3, uint64(u.ID), uint64(prefixIdx), uint64(v)) < 0.08) {
		siblings = other
	}
	if len(siblings) == 0 {
		return 0, false
	}
	// Every other version returns the prefix home, so moves both split
	// and re-merge atoms over time.
	if v%2 == 0 {
		return 0, false
	}
	return siblings[pickn(len(siblings), m.Seed, 0xc4f2, uint64(u.ID), uint64(prefixIdx), uint64(v))], true
}

// sameAnnounce reports whether two groups share the exact announce policy.
func sameAnnounce(a, b *topology.PolicyGroup) bool {
	if len(a.Announce) != len(b.Announce) {
		return false
	}
	for n, pa := range a.Announce {
		if pb, ok := b.Announce[n]; !ok || pa != pb {
			return false
		}
	}
	return true
}

// applyPrefixMoves fills ov.PrefixMoves for time t.
func (m ChurnModel) applyPrefixMoves(g *topology.Graph, ov *Overlay, t float64) {
	if m.PrefixMobileShare <= 0 && m.PrefixBaseMoveRate <= 0 {
		return
	}
	for _, u := range g.Groups {
		for pi, pfx := range u.Prefixes {
			v := m.PrefixMoveVersion(u.ID, pi, t)
			if v == 0 {
				continue
			}
			if target, ok := m.MoveTarget(g, u, pi, v); ok {
				ov.PrefixMoves[pfx] = target
			}
		}
	}
}

// applyUnitEvent installs the mutation for a unit at version v. The
// mutation is a pure function of (seed, unit, v): re-deriving the
// overlay at any time with the same version yields the same policy, so
// policies change exactly when versions do.
func (m ChurnModel) applyUnitEvent(g *topology.Graph, ov *Overlay, u *topology.PolicyGroup, v int) {
	kind := unitf(m.Seed, 0xc4e6, uint64(u.SigID), uint64(v))
	if kind < m.TransitFlipShare {
		// Transit flip: invert one transit's export decision for this
		// unit toward one of its neighbors. The transit is drawn from
		// the origin's providers, so the flip lands on the unit's actual
		// path region; a flip that touches no selected path is a no-op.
		if key, ok := m.flipKey(g, u, v); ok {
			ov.ExportFlip[key] = true
		}
		return
	}
	// Origin announce change: re-derive the announce set with a version-
	// dependent variation — toggle prepending on one neighbor or drop /
	// restore one provider.
	origin := g.AS(u.Origin)
	if origin == nil {
		return
	}
	base := u.Announce
	na := make(map[uint32]topology.AnnouncePolicy, len(base))
	for k, p := range base {
		na[k] = p
	}
	sub := unitf(m.Seed, 0xc4e9, uint64(u.SigID), uint64(v))
	switch {
	case sub < 0.5 && len(na) > 0:
		// Toggle prepend on one announced neighbor.
		keys := sortedKeys(na)
		k := keys[pickn(len(keys), m.Seed, 0xc4ea, uint64(u.SigID), uint64(v))]
		pol := na[k]
		if pol.Prepend > 0 {
			pol.Prepend = 0
		} else {
			pol.Prepend = 1 + pickn(2, m.Seed, 0xc4eb, uint64(u.SigID), uint64(v))
		}
		na[k] = pol
	case len(na) > 1:
		// Drop one announced neighbor (but never the last).
		keys := sortedKeys(na)
		k := keys[pickn(len(keys), m.Seed, 0xc4ec, uint64(u.SigID), uint64(v))]
		delete(na, k)
	default:
		// Restore a provider not currently announced.
		for _, p := range origin.Providers {
			if _, ok := na[p]; !ok {
				na[p] = topology.AnnouncePolicy{}
				break
			}
		}
	}
	ov.AnnounceOverride[u.ID] = na
}

func sortedKeys(m map[uint32]topology.AnnouncePolicy) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Local hash helpers (mirrors topology's label-addressed randomness).
func hh(vals ...uint64) uint64 {
	acc := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		acc = mixc(acc ^ v)
	}
	return acc
}

func mixc(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func unitf(vals ...uint64) float64 {
	return float64(hh(vals...)>>11) / float64(1<<53)
}

func pickn(n int, vals ...uint64) int {
	if n <= 0 {
		return 0
	}
	return int(hh(vals...) % uint64(n))
}
