// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate: each experiment runs the
// pipeline at the configured scale and prints the same rows or series
// the paper reports, alongside the paper's own numbers where they are
// comparable (shape, not absolute counts — the substrate is a scaled
// simulator, DESIGN.md documents the substitution).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/longitudinal"
	"repro/internal/topology"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string // "table1", "fig4", ...
	Title string
	Run   func(cfg longitudinal.Config, w io.Writer) error
}

// All returns every experiment, tables first, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1: general statistics of atoms, 2004 vs 2024", Run: Table1},
		{ID: "table2", Title: "Table 2: formation distance distribution, 2004 vs 2024", Run: Table2},
		{ID: "table3", Title: "Table 3: stability of atoms, 2004 vs 2024", Run: Table3},
		{ID: "table4", Title: "Table 4: IPv4 vs IPv6 general statistics", Run: Table4},
		{ID: "table5", Title: "Table 5: abnormal BGP peers removed", Run: Table5},
		{ID: "table6", Title: "Table 6: reproduced 2002 stability vs original paper", Run: Table6},
		{ID: "table7", Title: "Table 7: prefix-filter threshold sensitivity", Run: Table7},
		{ID: "fig1", Title: "Fig 1: formation distance, method (iii) vs method (ii)", Run: Fig1},
		{ID: "fig2", Title: "Fig 2: atoms/AS and prefixes/atom distributions", Run: Fig2},
		{ID: "fig3", Title: "Fig 3: likelihood of atom/AS seen in full per update", Run: Fig3},
		{ID: "fig4", Title: "Fig 4: formation distance trend 2004-2024", Run: Fig4},
		{ID: "fig5", Title: "Fig 5: stability trend 2004-2024", Run: Fig5},
		{ID: "fig6", Title: "Fig 6: observers per atom-split event (CDF)", Run: Fig6},
		{ID: "fig7", Title: "Fig 7: daily split observer breakdown", Run: Fig7},
		{ID: "fig8", Title: "Fig 8: IPv4 vs IPv6 distributions, 2024", Run: Fig8},
		{ID: "fig9", Title: "Fig 9: IPv6 stability trend", Run: Fig9},
		{ID: "fig10", Title: "Fig 10: IPv6 update correlation, 2024", Run: Fig10},
		{ID: "fig11", Title: "Fig 11: IPv6 formation distance trend", Run: Fig11},
		{ID: "fig12", Title: "Fig 12: full-feed threshold trend", Run: Fig12},
		{ID: "fig13", Title: "Fig 13: number of full-feed peers trend", Run: Fig13},
		{ID: "fig14", Title: "Fig 14: 2002 reproduction, AS/atom distributions", Run: Fig14},
		{ID: "fig15", Title: "Fig 15: 2002 reproduction, update correlation", Run: Fig15},
		{ID: "fig16", Title: "Fig 16: long-window split observer breakdown", Run: Fig16},
		{ID: "ablation-sanitize", Title: "Ablation: §2.4 sanitization vs Afek-2002 rules on 2024 data", Run: AblationSanitize},
		{ID: "ablation-sampling", Title: "Ablation: formation-distance origin sampling cap", Run: AblationFormationSampling},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment IDs.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// Eras used throughout.
var (
	era2002 = topology.EraOf(2002, 1)
	era2004 = topology.EraOf(2004, 1)
	era2011 = topology.EraOf(2011, 4)
	era2024 = topology.EraOf(2024, 4)
)

// trendEras samples the 2004–2024 window every two years (quick mode
// uses a sparser grid via cfg.Scale heuristics upstream).
func trendEras() []topology.Era {
	var out []topology.Era
	for y := 2004; y <= 2024; y += 2 {
		out = append(out, topology.EraOf(y, 1))
	}
	return out
}

func v6TrendEras() []topology.Era {
	var out []topology.Era
	for y := 2012; y <= 2024; y += 2 {
		out = append(out, topology.EraOf(y, 1))
	}
	return out
}

// header prints the experiment banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// note prints an indented annotation.
func note(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, "  ~ "+format+"\n", args...)
}
