package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/sanitize"
	"repro/internal/textplot"
	"repro/internal/topology"
)

// Table1 regenerates the general statistics comparison (paper Table 1).
func Table1(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 1: general statistics of atoms, Jan 2004 vs Oct 2024")
	r04, err := longitudinal.RunEra(cfg, era2004)
	if err != nil {
		return err
	}
	r24, err := longitudinal.RunEra(cfg, era2024)
	if err != nil {
		return err
	}
	s04, s24 := r04.Stats, r24.Stats
	tbl := &textplot.Table{Headers: []string{"Metric", "Jan 2004", "Oct 2024", "paper 2004", "paper 2024"}}
	pct := func(n, d int) string { return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(d)) }
	tbl.AddRow("Number of prefixes", fmt.Sprint(s04.Prefixes), fmt.Sprint(s24.Prefixes), "131,526", "1,028,444")
	tbl.AddRow("Number of ASes", fmt.Sprint(s04.ASes), fmt.Sprint(s24.ASes), "16,490", "76,672")
	tbl.AddRow("ASes with one atom", pct(s04.SingleAtomASes, s04.ASes), pct(s24.SingleAtomASes, s24.ASes), "9,818 (59.5%)", "31,009 (40.4%)")
	tbl.AddRow("Number of atoms", fmt.Sprint(s04.Atoms), fmt.Sprint(s24.Atoms), "34,261", "483,117")
	tbl.AddRow("Atoms with one prefix", pct(s04.SinglePrefixAtoms, s04.Atoms), pct(s24.SinglePrefixAtoms, s24.Atoms), "19,772 (57.7%)", "355,197 (73.5%)")
	tbl.AddRow("Mean atom size", fmt.Sprintf("%.2f", s04.MeanAtomSize), fmt.Sprintf("%.2f", s24.MeanAtomSize), "3.84", "2.13")
	tbl.AddRow("99th pct atom size", fmt.Sprint(s04.P99AtomSize), fmt.Sprint(s24.P99AtomSize), "40", "17")
	tbl.AddRow("Largest atom size", fmt.Sprint(s04.LargestAtom), fmt.Sprint(s24.LargestAtom), "1,020", "3,072")
	tbl.Render(w)
	note(w, "absolute counts scale with -scale=%.3g; shape comparisons: prefix growth ×%.1f (paper ×7.8), atom growth ×%.1f (paper ×14.1), mean size %.2f→%.2f (paper 3.84→2.13)",
		cfg.Scale,
		float64(s24.Prefixes)/float64(s04.Prefixes),
		float64(s24.Atoms)/float64(s04.Atoms),
		s04.MeanAtomSize, s24.MeanAtomSize)
	return nil
}

// Table2 regenerates the formation-distance distribution (paper Table 2).
func Table2(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 2: formation distance distribution, 2004 vs 2024")
	r04, err := longitudinal.RunEra(cfg, era2004)
	if err != nil {
		return err
	}
	r24, err := longitudinal.RunEra(cfg, era2024)
	if err != nil {
		return err
	}
	paper04 := []string{"", "45%", "30%", "17%", "6%"}
	paper24 := []string{"", "20%", "30%", "33%", "12%"}
	tbl := &textplot.Table{Headers: []string{"", "2004", "2024", "paper 2004", "paper 2024"}}
	share := func(r *metrics.FormationResult, d int) string {
		return textplot.Percent(float64(r.AtomsAtDistance[d]) / float64(r.TotalAtoms))
	}
	for d := 1; d <= 4; d++ {
		tbl.AddRow(fmt.Sprintf("Atom formed at dist %d", d),
			share(r04.Formation, d), share(r24.Formation, d), paper04[d], paper24[d])
	}
	tbl.Render(w)
	f04, f24 := r04.Formation, r24.Formation
	note(w, "2004 distance-1 breakdown: single-atom AS %d, unique peers %d, prepending %d (of %d atoms)",
		f04.D1SingleAtom, f04.D1UniquePeers, f04.D1Prepend, f04.TotalAtoms)
	note(w, "2024 distance-1 breakdown: single-atom AS %d, unique peers %d, prepending %d (of %d atoms)",
		f24.D1SingleAtom, f24.D1UniquePeers, f24.D1Prepend, f24.TotalAtoms)
	return nil
}

// Table3 regenerates the stability comparison (paper Table 3).
func Table3(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 3: stability of atoms, Jan 2004 vs Oct 2024")
	r04, err := longitudinal.RunEra(cfg, era2004)
	if err != nil {
		return err
	}
	r24, err := longitudinal.RunEra(cfg, era2024)
	if err != nil {
		return err
	}
	tbl := &textplot.Table{Headers: []string{"", "2004 CAM", "2004 MPM", "2024 CAM", "2024 MPM", "paper 04", "paper 24"}}
	row := func(name string, a, b metrics.Stability, p04, p24 string) {
		tbl.AddRow(name, textplot.Percent(a.CAM), textplot.Percent(a.MPM),
			textplot.Percent(b.CAM), textplot.Percent(b.MPM), p04, p24)
	}
	row("After 8 hours", r04.Stab8h, r24.Stab8h, "96.3/98.3", "83.7/90.6")
	row("After 24 hours", r04.Stab24h, r24.Stab24h, "91.4/95.0", "79.3/87.2")
	row("After 1 week", r04.Stab1w, r24.Stab1w, "80.3/88.8", "71.9/80.1")
	tbl.Render(w)
	note(w, "paper columns are CAM/MPM percent; shape checks: 2024 less stable than 2004 at every horizon, MPM above CAM, fast-then-flat decay")
	return nil
}

// Table4 regenerates the IPv4/IPv6 comparison (paper Table 4).
func Table4(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 4: general statistics, IPv4 2024 vs IPv6 2024 vs IPv6 2011")
	v4cfg := cfg
	v4cfg.Family = 4
	r4, err := longitudinal.RunEra(v4cfg, era2024)
	if err != nil {
		return err
	}
	v6cfg := cfg
	v6cfg.Family = 6
	r6, err := longitudinal.RunEra(v6cfg, era2024)
	if err != nil {
		return err
	}
	r611, err := longitudinal.RunEra(v6cfg, era2011)
	if err != nil {
		return err
	}
	pct := func(n, d int) string {
		if d == 0 {
			return "0"
		}
		return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(d))
	}
	tbl := &textplot.Table{Headers: []string{"Metric", "v4 2024", "v6 2024", "v6 2011", "paper v4-24", "paper v6-24", "paper v6-11"}}
	s4, s6, s11 := r4.Stats, r6.Stats, r611.Stats
	tbl.AddRow("Number of prefixes", fmt.Sprint(s4.Prefixes), fmt.Sprint(s6.Prefixes), fmt.Sprint(s11.Prefixes), "1,028,444", "227,363", "4,178")
	tbl.AddRow("Number of ASes", fmt.Sprint(s4.ASes), fmt.Sprint(s6.ASes), fmt.Sprint(s11.ASes), "76,672", "34,164", "2,938")
	tbl.AddRow("Single-atom ASes", pct(s4.SingleAtomASes, s4.ASes), pct(s6.SingleAtomASes, s6.ASes), pct(s11.SingleAtomASes, s11.ASes), "40.4%", "65.3%", "87.1%")
	tbl.AddRow("Number of atoms", fmt.Sprint(s4.Atoms), fmt.Sprint(s6.Atoms), fmt.Sprint(s11.Atoms), "483,117", "94,494", "3,486")
	tbl.AddRow("Single-prefix atoms", pct(s4.SinglePrefixAtoms, s4.Atoms), pct(s6.SinglePrefixAtoms, s6.Atoms), pct(s11.SinglePrefixAtoms, s11.Atoms), "73.5%", "77.6%", "92.5%")
	tbl.AddRow("Mean atom size", fmt.Sprintf("%.2f", s4.MeanAtomSize), fmt.Sprintf("%.2f", s6.MeanAtomSize), fmt.Sprintf("%.2f", s11.MeanAtomSize), "2.13", "2.41", "1.20")
	tbl.AddRow("99th pct atom size", fmt.Sprint(s4.P99AtomSize), fmt.Sprint(s6.P99AtomSize), fmt.Sprint(s11.P99AtomSize), "17", "20", "3")
	tbl.AddRow("Largest atom size", fmt.Sprint(s4.LargestAtom), fmt.Sprint(s6.LargestAtom), fmt.Sprint(s11.LargestAtom), "3,072", "2,317", "32")
	tbl.Render(w)
	note(w, "shape checks: v6 matures 2011→2024 (mean size up, single-atom share down); v6 single-atom share above v4")
	return nil
}

// Table5 reproduces the abnormal-peer removal list (paper Table 5 /
// §A8.3) over an era with injected artifacts.
func Table5(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 5: abnormal BGP peers removed (injected artifacts vs detected)")
	cfg.Artifacts = true
	r := longitudinal.NewEraRun(cfg, topology.EraOf(2022, 1))
	_, rep, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		return err
	}
	// Ground truth from the infrastructure.
	truth := map[uint32]string{}
	for _, cp := range r.Infra.AllPeers() {
		if cp.Peer.Artifact != 0 {
			truth[cp.Peer.ASN] = cp.Peer.Artifact.String()
		}
	}
	tbl := &textplot.Table{Headers: []string{"Peer ASN", "Injected defect", "Detected as"}}
	var asns []uint32
	for asn := range truth {
		asns = append(asns, asn)
	}
	for asn := range rep.RemovedPeerASes {
		if _, ok := truth[asn]; !ok {
			asns = append(asns, asn)
		}
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		injected := truth[asn]
		if injected == "" {
			injected = "(none)"
		}
		detected := "NOT DETECTED"
		if reason, ok := rep.RemovedPeerASes[asn]; ok {
			detected = string(reason)
		} else if injected == "stuck" {
			detected = "(stale feed: silent, not removed — matches paper's per-case handling)"
		}
		tbl.AddRow(fmt.Sprint(asn), injected, detected)
	}
	tbl.Render(w)
	note(w, "paper removed peers from 5 ASNs (4 ADD-PATH damaged, 1 private-ASN misconfigured); the simulator injects the same defect classes and the pipeline reports each removal with its reason")
	return nil
}

// Table6 reproduces the 2002 stability numbers (paper Table 6).
func Table6(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 6: reproduced 2002 stability vs Afek et al.'s published values")
	cfg.Artifacts = false
	r, err := longitudinal.RunEra(cfg, era2002)
	if err != nil {
		return err
	}
	tbl := &textplot.Table{Headers: []string{"Time span", "CAM", "MPM", "Afek CAM", "Afek MPM", "paper-repro CAM", "paper-repro MPM"}}
	tbl.AddRow("8 hours", textplot.Percent(r.Stab8h.CAM), textplot.Percent(r.Stab8h.MPM), "95.3%", "97.7%", "94.2%", "97.5%")
	tbl.AddRow("1 day", textplot.Percent(r.Stab24h.CAM), textplot.Percent(r.Stab24h.MPM), "91.6%", "97%", "91.8%", "96.2%")
	tbl.AddRow("1 week", textplot.Percent(r.Stab1w.CAM), textplot.Percent(r.Stab1w.MPM), "77.5%", "86%", "77.6%", "87%")
	tbl.Render(w)
	st := r.Stats
	note(w, "2002 snapshot: %d VPs (paper: 13 full feeds at rrc00), %d ASes, %d prefixes, %d atoms (paper: 12.5K / 115K / 26K)",
		len(r.Atoms.Snap.VPs), st.ASes, st.Prefixes, st.Atoms)
	return nil
}

// Table7 regenerates the visibility-threshold sensitivity grid (paper
// Table 7) via the fast in-memory feeds.
func Table7(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Table 7: admitted prefixes under [collectors x peer-AS] thresholds (Oct 2024)")
	// Run the pipeline with thresholds 1/1 to index raw visibility,
	// then count each grid cell over the same snapshot.
	loose := sanitize.Defaults()
	loose.Family = cfg.Family
	if loose.Family == 0 {
		loose.Family = 4
	}
	loose.MinCollectors, loose.MinPeerASes, loose.LengthFilter = 1, 1, false
	looseCfg := cfg
	looseCfg.Sanitize = &loose
	lr := longitudinal.NewEraRun(looseCfg, era2024)
	base, _, err := lr.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		return err
	}
	snap := base.Snap
	tbl := &textplot.Table{Headers: []string{"collectors \\ peerASes", "1", "2", "3", "4", "5"}}
	for c := 1; c <= 3; c++ {
		row := []string{fmt.Sprint(c)}
		for a := 1; a <= 5; a++ {
			n := 0
			for p := range snap.Prefixes {
				colls := map[string]struct{}{}
				ases := map[uint32]struct{}{}
				for v, id := range snap.Row(p) {
					if id != 0 {
						colls[snap.VPs[v].Collector] = struct{}{}
						ases[snap.VPs[v].ASN] = struct{}{}
					}
				}
				if len(colls) >= c && len(ases) >= a {
					n++
				}
			}
			row = append(row, fmt.Sprint(n))
		}
		tbl.AddRow(row...)
	}
	tbl.Render(w)
	note(w, "paper's adopted cell: >=2 collectors, >=4 peer ASes (1,028,444 of 1,083,140 at the loosest cell); shape check: counts nearly flat across the grid, <1%% lost at the adopted cell")
	return nil
}
