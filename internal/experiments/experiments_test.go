package experiments

import (
	"strings"
	"testing"

	"repro/internal/longitudinal"
)

func tinyConfig() longitudinal.Config {
	cfg := longitudinal.DefaultConfig(5)
	cfg.Scale = 0.004
	return cfg
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 25 {
		t.Fatalf("experiments = %d, want 25 (7 tables + 16 figures + 2 ablations)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs() incomplete")
	}
}

// runExperiment executes one experiment at tiny scale and returns output.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	var b strings.Builder
	if err := e.Run(tinyConfig(), &b); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return b.String()
}

func TestTable1Output(t *testing.T) {
	out := runExperiment(t, "table1")
	for _, want := range []string{"Number of prefixes", "Mean atom size", "1,028,444", "paper 2024"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Output(t *testing.T) {
	out := runExperiment(t, "table2")
	for _, want := range []string{"Atom formed at dist 1", "Atom formed at dist 4", "45%", "breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Output(t *testing.T) {
	out := runExperiment(t, "table3")
	for _, want := range []string{"After 8 hours", "After 1 week", "96.3/98.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Output(t *testing.T) {
	out := runExperiment(t, "table6")
	for _, want := range []string{"8 hours", "Afek CAM", "13 full feeds"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 missing %q:\n%s", want, out)
		}
	}
}

func TestTable7Output(t *testing.T) {
	out := runExperiment(t, "table7")
	if !strings.Contains(out, "collectors \\ peerASes") {
		t.Errorf("table7 grid missing:\n%s", out)
	}
}

func TestFig1Output(t *testing.T) {
	out := runExperiment(t, "fig1")
	for _, want := range []string{"method (iii)", "method (ii)", "% atoms created"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Output(t *testing.T) {
	out := runExperiment(t, "fig6")
	if !strings.Contains(out, "observers <= n") {
		t.Errorf("fig6 missing CDF:\n%s", out)
	}
}

func TestAblationOutputs(t *testing.T) {
	out := runExperiment(t, "ablation-sanitize")
	for _, want := range []string{"Afek-2002 rules", "Removed abnormal peers"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-sanitize missing %q:\n%s", want, out)
		}
	}
	out = runExperiment(t, "ablation-sampling")
	if !strings.Contains(out, "uncapped") {
		t.Errorf("ablation-sampling:\n%s", out)
	}
}

func TestFig12And13Output(t *testing.T) {
	out := runExperiment(t, "fig12")
	if !strings.Contains(out, "threshold") {
		t.Errorf("fig12:\n%s", out)
	}
	out = runExperiment(t, "fig13")
	if !strings.Contains(out, "full-feed peers") {
		t.Errorf("fig13:\n%s", out)
	}
}
