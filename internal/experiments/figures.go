package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/textplot"
	"repro/internal/topology"
)

// formationCurves prints the three Fig 1-style curves for one result.
func formationCurves(w io.Writer, title string, f *metrics.FormationResult) {
	tbl := &textplot.Table{Title: title,
		Headers: []string{"distance", "% atoms created", "% first split (d_min)", "% all split (d_max)"}}
	cumA, cumF, cumL := 0, 0, 0
	for d := 1; d <= 5; d++ {
		cumA += f.AtomsAtDistance[d]
		cumF += f.FirstSplitAtDistance[d]
		cumL += f.AllSplitAtDistance[d]
		tbl.AddRow(fmt.Sprint(d),
			textplot.Percent(float64(cumA)/float64(max(1, f.TotalAtoms))),
			textplot.Percent(float64(cumF)/float64(max(1, f.TotalOrigins))),
			textplot.Percent(float64(cumL)/float64(max(1, f.TotalOrigins))))
	}
	tbl.Render(w)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig1 compares formation-distance methods (iii) and (ii) on the 2002
// reproduction snapshot (paper Fig 1).
func Fig1(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 1: formation distance of atoms, method (iii) vs method (ii), 2002 snapshot")
	cfg.Artifacts = false
	r := longitudinal.NewEraRun(cfg, era2002)
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		return err
	}
	opts := metrics.DefaultFormationOptions()
	f3 := metrics.FormationDistances(atoms, opts)
	opts.Method = metrics.MethodStripBeforeDistance
	f2 := metrics.FormationDistances(atoms, opts)
	formationCurves(w, "method (iii): atoms from raw paths, distance in unique ASes (adopted)", f3)
	formationCurves(w, "method (ii): prepending stripped before distance", f2)
	d1iii := float64(f3.AtomsAtDistance[1]) / float64(max(1, f3.TotalAtoms))
	d1ii := float64(f2.AtomsAtDistance[1]) / float64(max(1, f2.TotalAtoms))
	note(w, "shape check (paper: method (iii) ~10 points higher at distance 1 than (ii), the prepend-split share): here %.1f%% vs %.1f%%",
		100*d1iii, 100*d1ii)
	note(w, "method (iii) distance-1 composition: single-atom origin %d, unique peer set %d, prepending %d",
		f3.D1SingleAtom, f3.D1UniquePeers, f3.D1Prepend)
	return nil
}

// distCDF prints CDF rows for two atom sets side by side.
func distCDF(w io.Writer, name string, a, b *core.AtomSet, labelA, labelB string) {
	ticks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	textplot.CDF(w, fmt.Sprintf("%s — %s: atoms per AS", name, labelA), a.AtomsPerASCounts(), ticks)
	textplot.CDF(w, fmt.Sprintf("%s — %s: atoms per AS", name, labelB), b.AtomsPerASCounts(), ticks)
	textplot.CDF(w, fmt.Sprintf("%s — %s: prefixes per atom", name, labelA), a.PrefixesPerAtomCounts(), ticks)
	textplot.CDF(w, fmt.Sprintf("%s — %s: prefixes per atom", name, labelB), b.PrefixesPerAtomCounts(), ticks)
}

// Fig2 prints the 2004-vs-2024 distribution CDFs (paper Fig 2).
func Fig2(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 2: atoms per AS and prefixes per atom, 2004 vs 2024")
	r04, err := longitudinal.RunEra(cfg, era2004)
	if err != nil {
		return err
	}
	r24, err := longitudinal.RunEra(cfg, era2024)
	if err != nil {
		return err
	}
	distCDF(w, "Fig 2", r04.Atoms, r24.Atoms, "2004", "2024")
	note(w, "shape checks: 2024 right-skewed in atoms/AS (more atoms per AS) and left-skewed in prefixes/atom (smaller atoms) relative to 2004")
	return nil
}

// corrTable prints Pr_full(k) rows for one correlation result.
func corrTable(w io.Writer, title string, uc *metrics.UpdateCorrelation) {
	tbl := &textplot.Table{Title: title,
		Headers: []string{"k", "atom", "AS", "AS multi-atom", "AS all-single-atoms"}}
	for k := 2; k <= uc.MaxK; k++ {
		tbl.AddRow(fmt.Sprint(k),
			textplot.Percent(uc.Atom[k].Pr()),
			textplot.Percent(uc.AS[k].Pr()),
			textplot.Percent(uc.ASMultiAtom[k].Pr()),
			textplot.Percent(uc.ASSinglePrefixAtoms[k].Pr()))
	}
	tbl.Render(w)
}

// Fig3 prints the update-correlation comparison (paper Fig 3).
func Fig3(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 3: likelihood of atom/AS seen in full within one update, 2004 vs 2024")
	r04, err := longitudinal.RunEra(cfg, era2004)
	if err != nil {
		return err
	}
	r24, err := longitudinal.RunEra(cfg, era2024)
	if err != nil {
		return err
	}
	corrTable(w, fmt.Sprintf("Year 2004 (%d update records)", r04.Corr.Records), r04.Corr)
	corrTable(w, fmt.Sprintf("Year 2024 (%d update records)", r24.Corr.Records), r24.Corr)
	note(w, "shape checks: atom curve above AS curve; all-single-atom ASes near zero (paper's coral dotted line)")
	return nil
}

// Fig4 plots the formation-distance trend (paper Fig 4).
func Fig4(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 4: % atoms created at each distance over 2004-2024")
	return formationTrend(cfg, w, trendEras())
}

func formationTrend(cfg longitudinal.Config, w io.Writer, eras []topology.Era) error {
	points, err := longitudinal.RunTrend(cfg, eras)
	if err != nil {
		return err
	}
	ch := &textplot.Chart{Title: "solid: all ASes (cumulative % at distance <= d)", FixedY: true, YMin: 0, YMax: 100}
	chM := &textplot.Chart{Title: "dashed equivalent: excluding single-atom ASes", FixedY: true, YMin: 0, YMax: 100}
	for d := 1; d <= 4; d++ {
		var s, sm textplot.Series
		s.Name = fmt.Sprintf("d<=%d", d)
		sm.Name = s.Name
		for _, p := range points {
			cum, cumM := 0.0, 0.0
			for dd := 1; dd <= d; dd++ {
				cum += p.FormationShare[dd]
				cumM += p.FormationShareMulti[dd]
			}
			x := float64(p.Era.Year()) + float64(p.Era.Quarter()-1)/4
			s.Points = append(s.Points, textplot.Point{X: x, Y: 100 * cum})
			sm.Points = append(sm.Points, textplot.Point{X: x, Y: 100 * cumM})
		}
		ch.Series = append(ch.Series, s)
		chM.Series = append(chM.Series, sm)
	}
	ch.Render(w)
	chM.Render(w)
	first, last := points[0], points[len(points)-1]
	note(w, "shape checks: distance-1 share falls (%.0f%% -> %.0f%%); distance<=2 cumulative falls as atoms form farther from the origin",
		100*first.FormationShare[1], 100*last.FormationShare[1])
	return nil
}

// Fig5 plots the stability trend (paper Fig 5).
func Fig5(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 5: short- and long-term stability over 2004-2024")
	return stabilityTrend(cfg, w, trendEras())
}

func stabilityTrend(cfg longitudinal.Config, w io.Writer, eras []topology.Era) error {
	points, err := longitudinal.RunTrend(cfg, eras)
	if err != nil {
		return err
	}
	ch := &textplot.Chart{Title: "stability (%)", FixedY: true, YMin: 40, YMax: 100}
	mk := func(name string, get func(longitudinal.TrendPoint) float64) {
		var s textplot.Series
		s.Name = name
		for _, p := range points {
			x := float64(p.Era.Year()) + float64(p.Era.Quarter()-1)/4
			s.Points = append(s.Points, textplot.Point{X: x, Y: 100 * get(p)})
		}
		ch.Series = append(ch.Series, s)
	}
	mk("CAM 8h", func(p longitudinal.TrendPoint) float64 { return p.CAM8h })
	mk("MPM 8h", func(p longitudinal.TrendPoint) float64 { return p.MPM8h })
	mk("CAM 1w", func(p longitudinal.TrendPoint) float64 { return p.CAM1w })
	mk("MPM 1w", func(p longitudinal.TrendPoint) float64 { return p.MPM1w })
	ch.Render(w)
	note(w, "shape checks: 8h curves above 1w curves; MPM above CAM; consistently high with a late-era dip")
	return nil
}

// Fig6 prints the split-observer CDF (paper Fig 6).
func Fig6(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 6: number of VPs observing each atom-split event (CDF)")
	study, err := longitudinal.RunSplits(cfg, topology.EraOf(2018, 1), 20)
	if err != nil {
		return err
	}
	tbl := &textplot.Table{Headers: []string{"observers <= n", "share of events", "paper"}}
	paper := map[int]string{1: "~60%", 3: "~80%"}
	for _, n := range []int{1, 2, 3, 5, 10, 20} {
		tbl.AddRow(fmt.Sprint(n), textplot.Percent(study.CDF.FractionAtMost(n)), paper[n])
	}
	tbl.Render(w)
	note(w, "%d split events over 20 days; shape check: most splits visible to very few VPs", study.CDF.Total)
	return nil
}

// Fig7 prints the per-day split breakdown (paper Fig 7).
func Fig7(cfg longitudinal.Config, w io.Writer) error {
	return splitBreakdown(cfg, w, 20, "Fig 7: daily split observer breakdown (20 days)")
}

// Fig16 is the long-window version (paper Fig 16).
func Fig16(cfg longitudinal.Config, w io.Writer) error {
	return splitBreakdown(cfg, w, 60, "Fig 16: split observer breakdown, long window (60 days)")
}

func splitBreakdown(cfg longitudinal.Config, w io.Writer, days int, title string) error {
	header(w, title)
	study, err := longitudinal.RunSplits(cfg, topology.EraOf(2018, 1), days)
	if err != nil {
		return err
	}
	tbl := &textplot.Table{Headers: []string{"day", "events", "multi-VP", "single-VP", "top VP", "top", "2nd", "rest"}}
	for _, d := range study.Days {
		if d.Events == 0 {
			continue
		}
		tbl.AddRow(fmt.Sprint(d.Day), fmt.Sprint(d.Events), fmt.Sprint(d.MultiObserver),
			fmt.Sprint(d.SingleObserver), d.TopVP.String(),
			fmt.Sprint(d.TopVPEvents), fmt.Sprint(d.SecondVPEvents), fmt.Sprint(d.OtherSingleVPEvents))
	}
	tbl.Render(w)
	// Aggregate shape check: is one VP responsible for most single-VP events?
	topShare := 0
	single := 0
	for _, d := range study.Days {
		topShare += d.TopVPEvents
		single += d.SingleObserver
	}
	if single > 0 {
		note(w, "shape check (paper: splits driven by one single VP): top VP holds %.0f%% of single-VP events",
			100*float64(topShare)/float64(single))
	}
	return nil
}

// Fig8 prints the v4/v6 distribution comparison (paper Fig 8).
func Fig8(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 8: atoms per AS and prefixes per atom, IPv4 vs IPv6 (2024)")
	v4cfg := cfg
	v4cfg.Family = 4
	r4, err := longitudinal.RunEra(v4cfg, era2024)
	if err != nil {
		return err
	}
	v6cfg := cfg
	v6cfg.Family = 6
	r6, err := longitudinal.RunEra(v6cfg, era2024)
	if err != nil {
		return err
	}
	distCDF(w, "Fig 8", r4.Atoms, r6.Atoms, "IPv4", "IPv6")
	note(w, "shape checks: IPv6 has fewer atoms per AS (FITI-style single-prefix ASes) and a similar prefixes-per-atom distribution")
	return nil
}

// Fig9 plots the v6 stability trend (paper Fig 9).
func Fig9(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 9: IPv6 stability trend")
	cfg.Family = 6
	return stabilityTrend(cfg, w, v6TrendEras())
}

// Fig10 prints the v6 update correlation (paper Fig 10).
func Fig10(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 10: IPv6 likelihood of atom/AS seen in full within one update (2024)")
	cfg.Family = 6
	r, err := longitudinal.RunEra(cfg, era2024)
	if err != nil {
		return err
	}
	corrTable(w, fmt.Sprintf("IPv6 2024 (%d update records)", r.Corr.Records), r.Corr)
	note(w, "shape check: atom curve consistently above the AS curve, as in IPv4")
	return nil
}

// Fig11 plots the v6 formation-distance trend (paper Fig 11).
func Fig11(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 11: IPv6 formation distance trend")
	cfg.Family = 6
	return formationTrend(cfg, w, v6TrendEras())
}

// Fig12 plots the full-feed threshold trend (paper Fig 12).
func Fig12(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 12: full-feed threshold (90% of max table size) over time")
	points, err := longitudinal.RunTrend(cfg, trendEras())
	if err != nil {
		return err
	}
	ch := &textplot.Chart{Title: "threshold (prefixes)"}
	var s textplot.Series
	s.Name = "threshold"
	for _, p := range points {
		s.Points = append(s.Points, textplot.Point{X: float64(p.Era.Year()), Y: float64(p.FullFeedThreshold)})
	}
	ch.Series = append(ch.Series, s)
	ch.Render(w)
	note(w, "paper: 100K -> 1M; here the threshold grows ×%.1f over the window (scaled world)",
		float64(points[len(points)-1].FullFeedThreshold)/float64(max(1, points[0].FullFeedThreshold)))
	return nil
}

// Fig13 plots the full-feed peer count trend (paper Fig 13).
func Fig13(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 13: number of full-feed peers over time")
	points, err := longitudinal.RunTrend(cfg, trendEras())
	if err != nil {
		return err
	}
	ch := &textplot.Chart{Title: "full-feed peers"}
	var s textplot.Series
	s.Name = "full feeds"
	for _, p := range points {
		s.Points = append(s.Points, textplot.Point{X: float64(p.Era.Year()), Y: float64(p.FullFeeds)})
	}
	ch.Series = append(ch.Series, s)
	ch.Render(w)
	note(w, "paper: <50 in 2004 to ~600 in 2024; here %d -> %d (VP census scales with -scale^0.4)",
		points[0].FullFeeds, points[len(points)-1].FullFeeds)
	return nil
}

// Fig14 prints the 2002 reproduction distributions (paper Fig 14).
func Fig14(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 14: 2002 reproduction — AS and atom distributions")
	cfg.Artifacts = false
	r, err := longitudinal.RunEra(cfg, era2002)
	if err != nil {
		return err
	}
	ticks := []int{1, 2, 4, 8, 16, 32, 64}
	textplot.CDF(w, "atoms per AS", r.Atoms.AtomsPerASCounts(), ticks)
	textplot.CDF(w, "prefixes per atom", r.Atoms.PrefixesPerAtomCounts(), ticks)
	textplot.CDF(w, "prefixes per AS", r.Atoms.PrefixesPerASCounts(), ticks)
	st := r.Stats
	note(w, "summary: %d ASes, %d prefixes, %d atoms — paper reproduced 12.5K ASes / 115K prefixes / 26K atoms with 13 VPs (ratios: atoms/AS %.2f vs 2.08, prefixes/atom %.2f vs 4.42)",
		st.ASes, st.Prefixes, st.Atoms,
		float64(st.Atoms)/float64(max(1, st.ASes)), float64(st.Prefixes)/float64(max(1, st.Atoms)))
	return nil
}

// Fig15 prints the 2002 update correlation (paper Fig 15).
func Fig15(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Fig 15: 2002 reproduction — update correlation")
	cfg.Artifacts = false
	r := longitudinal.NewEraRun(cfg, era2002)
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		return err
	}
	// A longer window stabilizes small-scale statistics (the paper used
	// 4 hours against the full-size Internet).
	records, _, err := r.Updates(longitudinal.OffsetBase, longitudinal.OffsetBase+1.0)
	if err != nil {
		return err
	}
	corr := metrics.CorrelateUpdates(atoms, records, 7)
	corrTable(w, fmt.Sprintf("Year 2002 (%d update records, 24h window)", len(records)), corr)
	note(w, "shape check: atom curve above AS curve, matching Afek et al.'s Fig and the paper's Fig 15")
	return nil
}
