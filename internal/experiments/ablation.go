package experiments

import (
	"fmt"
	"io"

	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/sanitize"
	"repro/internal/textplot"
)

// AblationSanitize contrasts the paper's §2.4 methodology against Afek
// et al.'s original 2002 rules on modern (2024) data — the comparison
// that motivates the paper's methodological contribution (§2.3): with a
// thousand heterogeneous peers, "all prefixes from any table" admits
// partial-feed artifacts, ghost prefixes, and defective peers, inflating
// atom counts and depressing measured stability.
func AblationSanitize(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Ablation: §2.4 sanitization vs Afek-2002 rules on 2024 data")

	run := func(opts sanitize.Options) (*longitudinal.EraResult, error) {
		c := cfg
		c.Artifacts = true
		c.Sanitize = &opts
		return longitudinal.RunEra(c, era2024)
	}

	modern, err := run(sanitize.Defaults())
	if err != nil {
		return err
	}
	legacy, err := run(legacyOptions())
	if err != nil {
		return err
	}

	tbl := &textplot.Table{Headers: []string{"Metric", "§2.4 pipeline", "Afek-2002 rules"}}
	row := func(name string, a, b string) { tbl.AddRow(name, a, b) }
	ms, ls := modern.Stats, legacy.Stats
	row("Vantage points", fmt.Sprint(len(modern.Atoms.Snap.VPs)), fmt.Sprint(len(legacy.Atoms.Snap.VPs)))
	row("Prefixes", fmt.Sprint(ms.Prefixes), fmt.Sprint(ls.Prefixes))
	row("Atoms", fmt.Sprint(ms.Atoms), fmt.Sprint(ls.Atoms))
	row("Mean atom size", fmt.Sprintf("%.2f", ms.MeanAtomSize), fmt.Sprintf("%.2f", ls.MeanAtomSize))
	row("Single-prefix atoms", textplot.Percent(frac(ms.SinglePrefixAtoms, ms.Atoms)), textplot.Percent(frac(ls.SinglePrefixAtoms, ls.Atoms)))
	row("CAM after 8 hours", textplot.Percent(modern.Stab8h.CAM), textplot.Percent(legacy.Stab8h.CAM))
	row("MPM after 8 hours", textplot.Percent(modern.Stab8h.MPM), textplot.Percent(legacy.Stab8h.MPM))
	row("Removed abnormal peers", fmt.Sprint(len(modern.Report.RemovedPeerASes)), fmt.Sprint(len(legacy.Report.RemovedPeerASes)))
	tbl.Render(w)

	extra := ls.Atoms - ms.Atoms
	note(w, "the legacy rules admit every partial feed and ghost prefix as a vantage point/route: %d extra atoms (%.0f%% inflation) — the paper's §A8.3.2 reports a single misconfigured peer alone inflating atoms by ~30%%",
		extra, 100*float64(extra)/float64(max(1, ms.Atoms)))
	note(w, "the fragmentation also distorts stability: nearly every atom becomes a singleton, which is trivially 'stable', masking the real dynamics the paper measures")
	return nil
}

// legacyOptions reproduces Afek et al.'s admission on modern data: all
// prefixes from any feed, no visibility thresholds, no abnormal-peer
// removal (thresholds disabled by setting them out of reach).
func legacyOptions() sanitize.Options {
	o := sanitize.Afek2002()
	o.MaxParseWarnings = 1 << 30
	o.PrivateASNShare = 2
	o.DuplicateShare = 2
	return o
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// AblationFormationSampling quantifies the MaxAtomsPerOrigin sampling
// cap (DESIGN.md design choice): the capped and uncapped formation
// distributions must agree, and the cap bounds the quadratic pairwise
// cost on mega-origins.
func AblationFormationSampling(cfg longitudinal.Config, w io.Writer) error {
	header(w, "Ablation: formation-distance origin sampling cap")
	r := longitudinal.NewEraRun(cfg, era2024)
	atoms, _, err := r.SnapshotAt(longitudinal.OffsetBase)
	if err != nil {
		return err
	}
	full := metrics.DefaultFormationOptions()
	full.MaxAtomsPerOrigin = 0
	capped := metrics.DefaultFormationOptions()

	rf := metrics.FormationDistances(atoms, full)
	rc := metrics.FormationDistances(atoms, capped)
	tbl := &textplot.Table{Headers: []string{"distance", "uncapped", "capped (800/origin)"}}
	for d := 1; d <= 5; d++ {
		tbl.AddRow(fmt.Sprint(d),
			textplot.Percent(frac(rf.AtomsAtDistance[d], rf.TotalAtoms)),
			textplot.Percent(frac(rc.AtomsAtDistance[d], rc.TotalAtoms)))
	}
	tbl.Render(w)
	note(w, "uncapped analyzed %d atoms, capped %d — distributions agree, cost is bounded", rf.TotalAtoms, rc.TotalAtoms)
	return nil
}
