package textplot

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Table 1: stats",
		Headers: []string{"Metric", "2004", "2024"},
	}
	tbl.AddRow("Prefixes", "131,526", "1,028,444")
	tbl.AddRow("Mean", "3.84", "2.13")
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"Table 1: stats", "Metric", "131,526", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Alignment: all data lines share the column start of the header.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	col := strings.Index(lines[1], "2004")
	if col < 0 || !strings.HasPrefix(lines[3][col:], "131,526") {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Headers: []string{"A"}}
	tbl.AddRow("x", "extra", "more")
	var b strings.Builder
	tbl.Render(&b) // must not panic
	if !strings.Contains(b.String(), "extra") {
		t.Error("ragged cell lost")
	}
}

func TestChartRender(t *testing.T) {
	ch := &Chart{
		Title:  "Fig 5: stability",
		Height: 6, Width: 30,
		Series: []Series{
			{Name: "CAM", Points: []Point{{2004, 96}, {2014, 90}, {2024, 84}}},
			{Name: "MPM", Points: []Point{{2004, 98}, {2014, 94}, {2024, 90}}},
		},
	}
	var b strings.Builder
	ch.Render(&b)
	out := b.String()
	for _, want := range []string{"Fig 5", "legend: * CAM | o MPM", "2004", "2024"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
}

func TestChartEmpty(t *testing.T) {
	var b strings.Builder
	(&Chart{Title: "empty"}).Render(&b)
	if !strings.Contains(b.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartFixedY(t *testing.T) {
	ch := &Chart{FixedY: true, YMin: 0, YMax: 100, Height: 4, Width: 10,
		Series: []Series{{Name: "s", Points: []Point{{0, 50}, {1, 200}}}}}
	var b strings.Builder
	ch.Render(&b) // out-of-range point clamps, no panic
	if !strings.Contains(b.String(), "100.0") {
		t.Error("fixed range not used")
	}
}

func TestCDF(t *testing.T) {
	var b strings.Builder
	CDF(&b, "sizes", []int{1, 1, 1, 2, 3, 10}, []int{1, 2, 5, 10})
	out := b.String()
	if !strings.Contains(out, "P(x <=    1) =  50.0%") {
		t.Errorf("bad CDF:\n%s", out)
	}
	if !strings.Contains(out, "P(x <=   10) = 100.0%") {
		t.Errorf("bad CDF tail:\n%s", out)
	}
	b.Reset()
	CDF(&b, "none", nil, []int{1})
	if !strings.Contains(b.String(), "no data") {
		t.Error("empty CDF")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.123); got != " 12.3%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(-1); got != "   n/a" {
		t.Errorf("Percent(-1) = %q", got)
	}
}
