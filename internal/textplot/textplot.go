// Package textplot renders the small set of text artifacts the
// experiment harness prints: aligned tables, CDF curves, and trend
// series — terminal stand-ins for the paper's tables and figures.
package textplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple aligned-column table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		seps := make([]string, cols)
		for i := range seps {
			seps[i] = strings.Repeat("-", widths[i])
		}
		line(seps)
	}
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of (x, y) points for a trend chart.
type Series struct {
	Name   string
	Points []Point
}

// Point is one sample.
type Point struct {
	X, Y float64
}

// Chart renders small multi-series line charts with a shared x axis as
// an ASCII grid (rows = y buckets, columns = x samples).
type Chart struct {
	Title      string
	YLabel     string
	Height     int // rows; default 12
	Width      int // columns; default 60
	YMin, YMax float64
	FixedY     bool // use YMin/YMax instead of data range
	Series     []Series
}

// marks used per series, in order.
var marks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) {
	height, width := c.Height, c.Width
	if height <= 0 {
		height = 12
	}
	if width <= 0 {
		width = 60
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if c.FixedY {
		ymin, ymax = c.YMin, c.YMax
	}
	if math.IsInf(xmin, 1) {
		fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			x := int((p.X - xmin) / (xmax - xmin) * float64(width-1))
			yf := (p.Y - ymin) / (ymax - ymin)
			if yf < 0 {
				yf = 0
			}
			if yf > 1 {
				yf = 1
			}
			y := height - 1 - int(yf*float64(height-1))
			grid[y][x] = mark
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for i, row := range grid {
		yv := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		fmt.Fprintf(w, "  %8.1f |%s|\n", yv, string(row))
	}
	fmt.Fprintf(w, "  %8s  %s\n", "", axisLine(xmin, xmax, width))
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, " | "))
	if c.YLabel != "" {
		fmt.Fprintf(w, "  y: %s\n", c.YLabel)
	}
}

func axisLine(xmin, xmax float64, width int) string {
	left := fmt.Sprintf("%.4g", xmin)
	right := fmt.Sprintf("%.4g", xmax)
	gap := width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	return left + strings.Repeat("-", gap) + right
}

// CDF renders a cumulative distribution of integer counts (e.g. atom
// sizes) as "P(X ≤ x)" rows at selected quantile-ish ticks.
func CDF(w io.Writer, title string, counts []int, ticks []int) {
	if len(counts) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	fmt.Fprintf(w, "%s (n=%d)\n", title, len(sorted))
	for _, tick := range ticks {
		n := sort.SearchInts(sorted, tick+1)
		fmt.Fprintf(w, "  P(x <= %4d) = %5.1f%%\n", tick, 100*float64(n)/float64(len(sorted)))
	}
}

// Percent formats a ratio as "12.3%%"-style fixed width.
func Percent(v float64) string {
	if v < 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%5.1f%%", 100*v)
}
