package collector

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/routing"
	"repro/internal/sanitize"
	"repro/internal/topology"
)

// TestFastPathEquivalence pins the contract of BuildFeeds: the in-memory
// fast path and the full MRT wire round-trip must produce identical
// sanitized snapshots.
func TestFastPathEquivalence(t *testing.T) {
	p := topology.DefaultParams(41)
	p.Scale = 0.008
	g := topology.Generate(p, topology.EraOf(2019, 3))
	in := BuildInfra(g, Config{Seed: 11, Artifacts: true})
	model := routing.ChurnModel{Seed: 3, UnitEventRate: 0.3, VPEventRate: 0.05,
		TransitFlipShare: 0.4, PrefixMobileShare: 0.01, PrefixBaseMoveRate: 0.01, VPShiftShare: 0.01}
	ts := EpochOf(g.Era)
	ov := model.OverlayAt(g, 12.5, in.FullFeedASNs())

	// Slow path: MRT round-trip.
	snap := BuildRIBs(g, in, ov, ts)
	var sources []bgpstream.Source
	for name, data := range snap.Archives {
		sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	slow, slowRep, err := sanitize.Clean(sources, nil, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}

	// Fast path: in-memory feeds.
	feeds := BuildFeeds(g, in, ov, ts)
	fast, fastRep, err := sanitize.CleanFeeds(feeds, nil, sanitize.Defaults())
	if err != nil {
		t.Fatal(err)
	}

	if len(slow.VPs) != len(fast.VPs) {
		t.Fatalf("VPs: slow %d fast %d", len(slow.VPs), len(fast.VPs))
	}
	for i := range slow.VPs {
		if slow.VPs[i] != fast.VPs[i] {
			t.Fatalf("VP %d: %v != %v", i, slow.VPs[i], fast.VPs[i])
		}
	}
	if len(slow.Prefixes) != len(fast.Prefixes) {
		t.Fatalf("prefixes: slow %d fast %d", len(slow.Prefixes), len(fast.Prefixes))
	}
	for i := range slow.Prefixes {
		if slow.Prefixes[i] != fast.Prefixes[i] {
			t.Fatalf("prefix %d: %v != %v", i, slow.Prefixes[i], fast.Prefixes[i])
		}
	}
	for p := range slow.Prefixes {
		for v := range slow.VPs {
			a, b := slow.Route(p, v), fast.Route(p, v)
			if !a.Equal(b) {
				t.Fatalf("route (%d,%d): %v != %v", p, v, a, b)
			}
		}
	}
	if slowRep.FullFeeds != fastRep.FullFeeds ||
		slowRep.PrefixesAdmitted != fastRep.PrefixesAdmitted ||
		slowRep.MOASPrefixes != fastRep.MOASPrefixes {
		t.Errorf("reports differ: slow %+v fast %+v", slowRep, fastRep)
	}
}
