package collector

import (
	"bytes"
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/prefixset"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Snapshot is one RIB dump across all collectors.
type Snapshot struct {
	Era       topology.Era
	Timestamp uint32
	// Archives maps collector name to its MRT TABLE_DUMP_V2 archive.
	Archives map[string][]byte
}

// routeEntry is a peer's merged best route for one prefix.
type routeEntry struct {
	class routing.Class
	cost  int
	path  aspath.Seq
}

// BuildRIBs computes every peer's routing table under the overlay and
// dumps per-collector MRT archives. MOAS prefixes (present in several
// units) are merged per peer by the BGP decision order: class, then
// cost, then lowest path lexicographically.
func BuildRIBs(g *topology.Graph, in *Infra, ov *routing.Overlay, ts uint32) *Snapshot {
	snap := &Snapshot{Era: g.Era, Timestamp: ts, Archives: make(map[string][]byte)}

	// Distinct peers; stuck peers route on the pristine (overlay-free)
	// graph — their feed is stale.
	peerSet := map[uint32]*Peer{}
	var vps, stuckVPs []uint32
	for _, cp := range in.AllPeers() {
		if _, ok := peerSet[cp.Peer.ASN]; ok {
			continue
		}
		peerSet[cp.Peer.ASN] = cp.Peer
		if cp.Peer.Artifact == ArtifactStuck {
			stuckVPs = append(stuckVPs, cp.Peer.ASN)
		} else {
			vps = append(vps, cp.Peer.ASN)
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	sort.Slice(stuckVPs, func(i, j int) bool { return stuckVPs[i] < stuckVPs[j] })

	routes := map[netip.Prefix]map[uint32]routeEntry{}
	merge := func(pfx netip.Prefix, vp uint32, r routing.VPRoute) {
		m := routes[pfx]
		if m == nil {
			m = map[uint32]routeEntry{}
			routes[pfx] = m
		}
		cur, ok := m[vp]
		cand := routeEntry{class: r.Class, cost: r.Cost, path: r.Path}
		if !ok || better(cand, cur) {
			m[vp] = cand
		}
	}

	moves := routing.BuildMoveSet(ov)
	eng := routing.NewEngine(g, ov)
	shifted := hasShifts(ov, vps)
	for _, u := range g.Groups {
		prefixes := moves.UnitPrefixes(u)
		if len(prefixes) == 0 {
			continue
		}
		rs := eng.PathsAt(u, vps)
		var alts []routing.VPRoute
		if shifted {
			alts = eng.AltPathsAt(vps)
		}
		for i, r := range rs {
			if r.Path == nil {
				continue
			}
			for _, pfx := range prefixes {
				merge(pfx, vps[i], shiftRoute(ov, vps[i], pfx, r, alts, i))
			}
		}
	}
	if len(stuckVPs) > 0 {
		// Stuck peers serve the pristine world: no overlay, no moves.
		stale := routing.NewEngine(g, nil)
		for _, u := range g.Groups {
			rs := stale.PathsAt(u, stuckVPs)
			for i, r := range rs {
				if r.Path == nil {
					continue
				}
				for _, pfx := range u.Prefixes {
					merge(pfx, stuckVPs[i], r)
				}
			}
		}
	}

	prefixes := make([]netip.Prefix, 0, len(routes))
	for p := range routes {
		prefixes = append(prefixes, p)
	}
	prefixset.SortPrefixes(prefixes)

	for _, c := range in.Collectors {
		snap.Archives[c.Name] = buildArchive(in, c, prefixes, routes, ts)
	}
	return snap
}

// hasShifts reports whether any vantage point carries a shift token.
func hasShifts(ov *routing.Overlay, vps []uint32) bool {
	if ov == nil || ov.VPShiftShare <= 0 {
		return false
	}
	for _, vp := range vps {
		if ov.VPShift[vp] != 0 {
			return true
		}
	}
	return false
}

// shiftRoute applies a VP's per-prefix route shift: a shifted VP reports
// its runner-up route for a small hash-selected share of prefixes. The
// set is 70% sticky (stable across the VP's events) and 30% churning
// (re-drawn each event), so consecutive snapshots differ by a bounded
// sliver — localized split events without compounding instability.
func shiftRoute(ov *routing.Overlay, vp uint32, pfx netip.Prefix, best routing.VPRoute, alts []routing.VPRoute, i int) routing.VPRoute {
	if ov == nil || alts == nil {
		return best
	}
	token := ov.VPShift[vp]
	if token == 0 || alts[i].Path == nil {
		return best
	}
	label := prefixLabel(pfx)
	if unitc(ov.VPSticky[vp], label) < ov.VPShiftShare*0.7 ||
		unitc(token, label) < ov.VPShiftShare*0.3 {
		return alts[i]
	}
	return best
}

// better orders candidate routes for MOAS merging.
func better(a, b routeEntry) bool {
	if a.class != b.class {
		return a.class > b.class
	}
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	// Lexicographic path comparison for a total order.
	n := len(a.path)
	if len(b.path) < n {
		n = len(b.path)
	}
	for i := 0; i < n; i++ {
		if a.path[i] != b.path[i] {
			return a.path[i] < b.path[i]
		}
	}
	return len(a.path) < len(b.path)
}

// buildArchive writes one collector's TABLE_DUMP_V2 archive.
func buildArchive(in *Infra, c *Collector, prefixes []netip.Prefix, routes map[netip.Prefix]map[uint32]routeEntry, ts uint32) []byte {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)

	pit := &mrt.PeerIndexTable{CollectorID: c.ID, ViewName: c.Name}
	for _, p := range c.Peers {
		pit.Peers = append(pit.Peers, mrt.Peer{BGPID: p.Addr, Addr: p.Addr, ASN: p.ASN})
	}
	body, err := pit.Marshal()
	if err != nil {
		panic("collector: peer index table: " + err.Error())
	}
	w.WriteRecord(mrt.Record{Timestamp: ts, Type: mrt.TypeTableDumpV2, Subtype: mrt.SubPeerIndexTable, Body: body})

	seq := uint32(0)
	emit := func(pfx netip.Prefix, entries []mrt.RIBEntry) {
		if len(entries) == 0 {
			return
		}
		rib := &mrt.RIB{Sequence: seq, Prefix: pfx, Entries: entries}
		seq++
		b, err := rib.Marshal()
		if err != nil {
			panic("collector: rib: " + err.Error())
		}
		w.WriteRecord(mrt.Record{Timestamp: ts, Type: mrt.TypeTableDumpV2, Subtype: rib.Subtype(), Body: b})
	}

	for _, pfx := range prefixes {
		perVP := routes[pfx]
		var entries []mrt.RIBEntry
		for idx, p := range c.Peers {
			r, ok := perVP[p.ASN]
			if !ok {
				continue
			}
			if !p.FullFeed && unitc(in.Seed, 0xfeed, uint64(p.ASN), prefixLabel(pfx)) >= p.PartialShare {
				continue
			}
			path := r.path
			if p.Artifact == ArtifactPrivateASN && len(path) > 0 {
				mod := make(aspath.Seq, 0, len(path)+1)
				mod = append(mod, path[0], 65000)
				mod = append(mod, path[1:]...)
				path = mod
			}
			attrs := ribAttrs(path)
			entries = append(entries, mrt.RIBEntry{PeerIndex: uint16(idx), Originated: ts - 3600, Attrs: attrs})
			if p.Artifact == ArtifactDuplicates && unitc(in.Seed, 0xd0b1, uint64(p.ASN), prefixLabel(pfx)) < 0.15 {
				entries = append(entries, mrt.RIBEntry{PeerIndex: uint16(idx), Originated: ts - 3599, Attrs: attrs})
			}
		}
		emit(pfx, entries)
	}

	// Ghost prefixes: fabricated, visible only at this peer — the very
	// localized announcements the visibility filter removes.
	for idx, p := range c.Peers {
		if p.GhostShare <= 0 {
			continue
		}
		n := int(p.GhostShare * float64(len(prefixes)) * p.PartialShare)
		for j := 0; j < n; j++ {
			pfx := ghostPrefix(p.ASN, j)
			fakeOrigin := uint32(900000 + pickc(100000, in.Seed, 0x6057, uint64(p.ASN), uint64(j)))
			path := aspath.Seq{p.ASN, fakeOrigin}
			emit(pfx, []mrt.RIBEntry{{PeerIndex: uint16(idx), Originated: ts - 3600, Attrs: ribAttrs(path)}})
		}
	}

	if err := w.Flush(); err != nil {
		panic("collector: flush: " + err.Error())
	}
	return buf.Bytes()
}

// ribAttrs encodes the standard attribute block for a RIB entry.
func ribAttrs(path aspath.Seq) []byte {
	attrs := []bgp.Attr{
		bgp.Origin(bgp.OriginIGP),
		bgp.ASPath{Path: aspath.FromSeq(path)},
	}
	b, err := bgp.MarshalAttributes(attrs, bgp.Options{AS4: true})
	if err != nil {
		panic("collector: attrs: " + err.Error())
	}
	return b
}

// ghostPrefix fabricates a per-peer /24 in a reserved region.
func ghostPrefix(asn uint32, j int) netip.Prefix {
	// 176.0.0.0 region, disjoint from topology allocations.
	slot := uint32(0xB0000000>>8) + (asn%100000)*64 + uint32(j)
	v := slot << 8
	b := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	return netip.PrefixFrom(netip.AddrFrom4(b), 24)
}

// prefixLabel hashes a prefix into a stable label for unitc.
func prefixLabel(p netip.Prefix) uint64 {
	a := p.Addr().As16()
	hi := uint64(a[0])<<56 | uint64(a[1])<<48 | uint64(a[2])<<40 | uint64(a[3])<<32 |
		uint64(a[4])<<24 | uint64(a[5])<<16 | uint64(a[6])<<8 | uint64(a[7])
	lo := uint64(a[8])<<56 | uint64(a[9])<<48 | uint64(a[10])<<40 | uint64(a[11])<<32 |
		uint64(a[12])<<24 | uint64(a[13])<<16 | uint64(a[14])<<8 | uint64(a[15])
	return hi ^ lo*31 ^ uint64(p.Bits())
}
