package collector

import (
	"net/netip"
	"testing"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestUpdatesTransformRIBs is the integration contract between snapshot
// and update synthesis: replaying the update stream for (t1, t2) on top
// of a full-feed peer's t1 table must land close to its t2 table. Exact
// equality is not expected — VP route shifts change snapshots without
// emitting updates (a documented infidelity) — but path-changing policy
// events, prefix moves, and flaps all travel through the stream, so the
// replayed table must agree with t2 far better than t1 does.
func TestUpdatesTransformRIBs(t *testing.T) {
	p := topology.DefaultParams(61)
	p.Scale = 0.008
	g := topology.Generate(p, topology.EraOf(2018, 1))
	in := BuildInfra(g, Config{Seed: 13}) // no artifacts: clean replay
	model := routing.ChurnModel{
		Seed: 5, UnitEventRate: 0.4, VPEventRate: 0.05, TransitFlipShare: 0.4,
		PrefixMobileShare: 0.03, PrefixBaseMoveRate: 0.02, RefreshRate: 0.5,
	}
	vps := in.FullFeedASNs()
	const t1, t2 = 10.0, 11.0
	ts := EpochOf(g.Era)

	feeds1 := BuildFeeds(g, in, model.OverlayAt(g, t1, vps), ts)
	feeds2 := BuildFeeds(g, in, model.OverlayAt(g, t2, vps), ts+86400)

	updates := BuildUpdates(g, in, UpdateConfig{
		Model: model, FromT: t1, ToT: t2, BaseTime: ts,
		FullMessageProb: 1.0, // no chunk jitter for a crisp replay
	})

	// Pick the busiest full-feed peer's feed at one collector.
	var coll *Collector
	var peer *Peer
	for _, c := range in.Collectors {
		for _, pr := range c.Peers {
			if pr.FullFeed && pr.Artifact == ArtifactNone {
				coll, peer = c, pr
				break
			}
		}
		if peer != nil {
			break
		}
	}
	if peer == nil {
		t.Skip("no clean full feed")
	}
	var table1, table2 map[netip.Prefix]aspath.Seq
	for _, f := range feeds1 {
		if f.VP.Collector == coll.Name && f.VP.ASN == peer.ASN {
			table1 = f.Routes
		}
	}
	for _, f := range feeds2 {
		if f.VP.Collector == coll.Name && f.VP.ASN == peer.ASN {
			table2 = f.Routes
		}
	}
	if table1 == nil || table2 == nil {
		t.Fatal("peer feed missing")
	}

	// Replay the peer's updates onto table1.
	replayed := make(map[netip.Prefix]aspath.Seq, len(table1))
	for k, v := range table1 {
		replayed[k] = v
	}
	s := bgpstream.NewStream(&bgpstream.Filter{
		Collectors: map[string]bool{coll.Name: true},
		PeerASNs:   map[uint32]bool{peer.ASN: true},
	}, bgpstream.BytesSource(coll.Name, updates[coll.Name], bgp.Options{}))
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, e := range elems {
		switch e.Type {
		case bgpstream.ElemAnnounce:
			seq, err := e.Path.Sequence()
			if err != nil {
				continue
			}
			replayed[e.Prefix] = seq
			applied++
		case bgpstream.ElemWithdraw:
			delete(replayed, e.Prefix)
			applied++
		}
	}
	if applied == 0 {
		t.Skip("no updates for this peer in the window")
	}

	agree := func(a, b map[netip.Prefix]aspath.Seq) (same, total int) {
		for pfx, pa := range a {
			total++
			if pb, ok := b[pfx]; ok && pa.Equal(pb) {
				same++
			}
		}
		for pfx := range b {
			if _, ok := a[pfx]; !ok {
				total++
			}
		}
		return
	}
	sBefore, tBefore := agree(table1, table2)
	sAfter, tAfter := agree(replayed, table2)
	before := float64(sBefore) / float64(tBefore)
	after := float64(sAfter) / float64(tAfter)
	t.Logf("peer %s/AS%d: agreement with t2: before replay %.3f, after replay %.3f (%d updates)",
		coll.Name, peer.ASN, before, after, applied)
	if after < before {
		t.Errorf("replaying updates moved the table AWAY from t2: %.3f -> %.3f", before, after)
	}
	if after < 0.97 {
		t.Errorf("replayed table agrees with t2 at only %.3f", after)
	}
}
