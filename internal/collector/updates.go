package collector

import (
	"bytes"
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/routing"
	"repro/internal/topology"
)

// UpdateConfig controls update-stream synthesis.
type UpdateConfig struct {
	// Model is the churn process (shared with snapshot overlays so
	// updates and RIB diffs agree).
	Model routing.ChurnModel
	// FromT/ToT bound the window in days since the era epoch.
	FromT, ToT float64
	// BaseTime is the Unix timestamp corresponding to FromT.
	BaseTime uint32
	// FullMessageProb is the probability that one routing event emits
	// all of a unit's prefixes in a single UPDATE (the atom-level
	// update-correlation signal); otherwise the batch is split.
	FullMessageProb float64
	// FlapRate is the per-prefix rate (events/day) of single-prefix
	// noise flaps.
	FlapRate float64
}

// message is one pending UPDATE before serialization.
type message struct {
	t        float64
	peer     *Peer
	withdraw bool
	prefixes []netip.Prefix
	path     aspath.Seq
	order    int // stable sort tiebreak
}

// BuildUpdates synthesizes the BGP4MP update archives for the window:
// unit policy events re-announce whole units, VP local-preference events
// re-announce everything that changed at that VP, and per-prefix flaps
// add noise. Returns collector name → MRT bytes.
func BuildUpdates(g *topology.Graph, in *Infra, cfg UpdateConfig) map[string][]byte {
	vps, peersByASN := updateVPs(in)

	base := cfg.Model.OverlayAt(g, cfg.FromT, vps)
	moves := routing.BuildMoveSet(base)
	eng := routing.NewEngine(g, base)
	var msgs []message
	order := 0
	add := func(t float64, peer *Peer, withdraw bool, prefixes []netip.Prefix, path aspath.Seq) {
		msgs = append(msgs, message{t: t, peer: peer, withdraw: withdraw, prefixes: prefixes, path: path, order: order})
		order++
	}

	// Unit policy events (clocked per policy signature, so identically
	// configured sibling groups change and re-announce together).
	for _, u := range g.Groups {
		v1 := cfg.Model.UnitVersion(u, cfg.FromT)
		v2 := cfg.Model.UnitVersion(u, cfg.ToT)
		if v2 == v1 {
			continue
		}
		before := eng.PathsAt(u, vps)
		beforeCopy := make([]aspath.Seq, len(before))
		for i := range before {
			beforeCopy[i] = before[i].Path
		}
		vPrev := v1
		for k := v1 + 1; k <= v2; k++ {
			t := cfg.Model.UnitEventTime(u, k)
			if t < cfg.FromT {
				t = cfg.FromT
			}
			cfg.Model.ApplyUnitVersion(g, base, u, vPrev, k)
			vPrev = k
			after := eng.PathsAt(u, vps)
			emitDiff(g, cfg, add, t, u, moves, vps, peersByASN, beforeCopy, after)
			for i := range after {
				beforeCopy[i] = after[i].Path
			}
		}
	}

	// VP local-preference events: everything that changed at that VP.
	for _, vp := range vps {
		v1 := cfg.Model.VPVersion(vp, cfg.FromT)
		v2 := cfg.Model.VPVersion(vp, cfg.ToT)
		for k := v1 + 1; k <= v2; k++ {
			t := cfg.Model.VPEventTime(vp, k)
			if t < cfg.FromT {
				t = cfg.FromT
			}
			emitVPEvent(g, cfg, add, base, moves, t, vp, peersByASN, k)
		}
	}

	// Attribute refreshes: whole-group re-announcements with unchanged
	// paths (the dominant record type in real update streams).
	emitRefreshes(g, cfg, add, eng, moves, vps, peersByASN)

	// Prefix reassignment events.
	emitMoves(g, cfg, add, eng, vps, peersByASN)

	// Single-prefix flaps.
	emitFlaps(g, cfg, add, eng, vps, peersByASN)

	return serialize(in, cfg, msgs)
}

// updateVPs lists distinct peer ASNs (stuck peers emit no updates — a
// stale feed is silent) and indexes peers by ASN.
func updateVPs(in *Infra) ([]uint32, map[uint32]*Peer) {
	peersByASN := map[uint32]*Peer{}
	var vps []uint32
	for _, cp := range in.AllPeers() {
		p := cp.Peer
		if _, ok := peersByASN[p.ASN]; ok {
			continue
		}
		peersByASN[p.ASN] = p
		if p.Artifact != ArtifactStuck {
			vps = append(vps, p.ASN)
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	return vps, peersByASN
}

// emitDiff turns one unit's before/after paths into per-peer messages.
func emitDiff(g *topology.Graph, cfg UpdateConfig, add func(float64, *Peer, bool, []netip.Prefix, aspath.Seq),
	t float64, u *topology.PolicyGroup, moves *routing.MoveSet, vps []uint32, peers map[uint32]*Peer,
	before []aspath.Seq, after []routing.VPRoute) {
	for i, vp := range vps {
		b, a := before[i], after[i].Path
		if b.Equal(a) {
			continue
		}
		peer := peers[vp]
		pfxs := peerPrefixes(g, cfg, peer, moves.UnitPrefixes(u))
		if len(pfxs) == 0 {
			continue
		}
		if a == nil {
			chunked(cfg, u.ID, t, pfxs, func(chunk []netip.Prefix, dt float64) {
				add(t+dt, peer, true, chunk, nil)
			})
			continue
		}
		chunked(cfg, u.ID, t, pfxs, func(chunk []netip.Prefix, dt float64) {
			add(t+dt, peer, false, chunk, a)
		})
	}
}

// emitVPEvent recomputes every unit at one VP around its local event.
func emitVPEvent(g *topology.Graph, cfg UpdateConfig, add func(float64, *Peer, bool, []netip.Prefix, aspath.Seq),
	base *routing.Overlay, moves *routing.MoveSet, t float64, vp uint32, peers map[uint32]*Peer, version int) {
	peer := peers[vp]
	saltBefore := cfg.Model.VPSaltAt(vp, version-1)
	saltAfter := cfg.Model.VPSaltAt(vp, version)

	setSalt := func(s uint64) {
		if s == 0 {
			delete(base.VPSalt, vp)
		} else {
			base.VPSalt[vp] = s
		}
	}
	single := []uint32{vp}
	setSalt(saltBefore)
	engB := routing.NewEngine(g, base)
	beforePaths := make([]aspath.Seq, len(g.Groups))
	for _, u := range g.Groups {
		beforePaths[u.ID] = engB.PathsAt(u, single)[0].Path
	}
	setSalt(saltAfter)
	engA := routing.NewEngine(g, base)
	for _, u := range g.Groups {
		a := engA.PathsAt(u, single)[0].Path
		if beforePaths[u.ID].Equal(a) {
			continue
		}
		pfxs := peerPrefixes(g, cfg, peer, moves.UnitPrefixes(u))
		if len(pfxs) == 0 {
			continue
		}
		if a == nil {
			chunked(cfg, u.ID, t, pfxs, func(chunk []netip.Prefix, dt float64) {
				add(t+dt, peer, true, chunk, nil)
			})
			continue
		}
		chunked(cfg, u.ID, t, pfxs, func(chunk []netip.Prefix, dt float64) {
			add(t+dt, peer, false, chunk, a)
		})
	}
	// Leave the salt at its post-event value: later unit events at this
	// VP see the new preference.
}

// emitRefreshes re-announces whole units with their current paths at
// attribute-refresh events.
func emitRefreshes(g *topology.Graph, cfg UpdateConfig, add func(float64, *Peer, bool, []netip.Prefix, aspath.Seq),
	eng *routing.Engine, moves *routing.MoveSet, vps []uint32, peers map[uint32]*Peer) {
	if cfg.Model.RefreshRate <= 0 {
		return
	}
	for _, u := range g.Groups {
		v1 := cfg.Model.RefreshVersion(u, cfg.FromT)
		v2 := cfg.Model.RefreshVersion(u, cfg.ToT)
		if v2 == v1 {
			continue
		}
		var routes []routing.VPRoute
		for k := v1 + 1; k <= v2; k++ {
			t := cfg.Model.RefreshEventTime(u, k)
			if t < cfg.FromT {
				t = cfg.FromT
			}
			if routes == nil {
				routes = eng.PathsAt(u, vps)
			}
			for i, vp := range vps {
				if routes[i].Path == nil {
					continue
				}
				peer := peers[vp]
				pfxs := peerPrefixes(g, cfg, peer, moves.UnitPrefixes(u))
				if len(pfxs) == 0 {
					continue
				}
				path := routes[i].Path
				chunked(cfg, u.ID, t, pfxs, func(chunk []netip.Prefix, dt float64) {
					add(t+dt, peer, false, chunk, path)
				})
			}
		}
	}
}

// emitMoves announces prefix reassignments: when a prefix switches to a
// sibling group's policy, peers whose path for it changes re-announce
// the single prefix (atom-composition churn on the wire).
func emitMoves(g *topology.Graph, cfg UpdateConfig, add func(float64, *Peer, bool, []netip.Prefix, aspath.Seq),
	eng *routing.Engine, vps []uint32, peers map[uint32]*Peer) {
	if cfg.Model.PrefixMobileShare <= 0 && cfg.Model.PrefixBaseMoveRate <= 0 {
		return
	}
	for _, u := range g.Groups {
		for pi, pfx := range u.Prefixes {
			v1 := cfg.Model.PrefixMoveVersion(u.ID, pi, cfg.FromT)
			v2 := cfg.Model.PrefixMoveVersion(u.ID, pi, cfg.ToT)
			if v2 == v1 {
				continue
			}
			for k := v1 + 1; k <= v2; k++ {
				t := cfg.Model.PrefixMoveTime(u.ID, pi, k)
				if t < cfg.FromT {
					t = cfg.FromT
				}
				oldUnit, newUnit := u, u
				if tgt, ok := cfg.Model.MoveTarget(g, u, pi, k-1); ok {
					oldUnit = g.Groups[tgt]
				}
				if tgt, ok := cfg.Model.MoveTarget(g, u, pi, k); ok {
					newUnit = g.Groups[tgt]
				}
				if oldUnit == newUnit {
					continue
				}
				oldPaths := eng.PathsAt(oldUnit, vps)
				oldCopy := make([]aspath.Seq, len(oldPaths))
				for i := range oldPaths {
					oldCopy[i] = oldPaths[i].Path
				}
				newPaths := eng.PathsAt(newUnit, vps)
				for i, vp := range vps {
					if oldCopy[i].Equal(newPaths[i].Path) {
						continue
					}
					peer := peers[vp]
					if !peer.FullFeed && unitc(g.Seed, 0xfeed, uint64(peer.ASN), prefixLabel(pfx)) >= peer.PartialShare {
						continue
					}
					if newPaths[i].Path == nil {
						add(t, peer, true, []netip.Prefix{pfx}, nil)
					} else {
						add(t, peer, false, []netip.Prefix{pfx}, newPaths[i].Path)
					}
				}
			}
		}
	}
}

// emitFlaps adds single-prefix withdraw/re-announce noise.
func emitFlaps(g *topology.Graph, cfg UpdateConfig, add func(float64, *Peer, bool, []netip.Prefix, aspath.Seq),
	eng *routing.Engine, vps []uint32, peers map[uint32]*Peer) {
	if cfg.FlapRate <= 0 {
		return
	}
	for _, u := range g.Groups {
		for pi, pfx := range u.Prefixes {
			rate := cfg.FlapRate * 3 * unitc(uint64(u.ID), 0xf1a0, uint64(pi))
			v1 := flapVersion(rate, cfg.FromT, uint64(u.ID), uint64(pi))
			v2 := flapVersion(rate, cfg.ToT, uint64(u.ID), uint64(pi))
			if v2 == v1 {
				continue
			}
			var routes []routing.VPRoute
			for k := v1 + 1; k <= v2; k++ {
				t := cfg.FromT + (cfg.ToT-cfg.FromT)*unitc(uint64(u.ID), 0xf1a1, uint64(pi), uint64(k))
				// One or two peers observe the flap.
				n := 1 + pickc(2, uint64(u.ID), 0xf1a2, uint64(pi), uint64(k))
				if routes == nil {
					routes = eng.PathsAt(u, vps)
				}
				for j := 0; j < n; j++ {
					vi := pickc(len(vps), uint64(u.ID), 0xf1a3, uint64(pi), uint64(k), uint64(j))
					r := routes[vi]
					if r.Path == nil {
						continue
					}
					peer := peers[vps[vi]]
					add(t, peer, true, []netip.Prefix{pfx}, nil)
					add(t+20.0/86400, peer, false, []netip.Prefix{pfx}, r.Path)
				}
			}
		}
	}
}

func flapVersion(rate, t float64, labels ...uint64) int {
	if rate <= 0 || t <= 0 {
		return 0
	}
	phase := unitc(append(labels, 0xf1a4)...)
	v := int(rate*t + phase)
	if v < 0 {
		v = 0
	}
	return v
}

// peerPrefixes filters a prefix batch to those a peer carries.
func peerPrefixes(g *topology.Graph, cfg UpdateConfig, peer *Peer, prefixes []netip.Prefix) []netip.Prefix {
	if peer.FullFeed {
		return prefixes
	}
	var out []netip.Prefix
	for _, pfx := range prefixes {
		if unitc(g.Seed, 0xfeed, uint64(peer.ASN), prefixLabel(pfx)) < peer.PartialShare {
			out = append(out, pfx)
		}
	}
	return out
}

// chunked delivers the batch in one full message with probability
// FullMessageProb, otherwise split into 2–3 chunks a few seconds apart
// (and always split above the message size budget).
func chunked(cfg UpdateConfig, unitID int, t float64, prefixes []netip.Prefix, emit func([]netip.Prefix, float64)) {
	const maxPerMsg = 200
	full := unitc(uint64(unitID), 0xc4c4, uint64(t*86400)) < cfg.FullMessageProb
	if full && len(prefixes) <= maxPerMsg {
		emit(prefixes, 0)
		return
	}
	parts := 2 + pickc(2, uint64(unitID), 0xc4c5, uint64(t*86400))
	if len(prefixes) <= 1 {
		emit(prefixes, 0)
		return
	}
	size := (len(prefixes) + parts - 1) / parts
	if size > maxPerMsg {
		size = maxPerMsg
	}
	dt := 0.0
	for i := 0; i < len(prefixes); i += size {
		end := i + size
		if end > len(prefixes) {
			end = len(prefixes)
		}
		emit(prefixes[i:end], dt)
		dt += 5.0 / 86400
	}
}

// serialize sorts messages, packs them the way routers do, and writes
// per-collector BGP4MP archives, applying the ADD-PATH artifact at
// encode time.
func serialize(in *Infra, cfg UpdateConfig, msgs []message) map[string][]byte {
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].t != msgs[j].t {
			return msgs[i].t < msgs[j].t
		}
		return msgs[i].order < msgs[j].order
	})
	msgs = packMessages(msgs)
	// Peer → collectors it feeds.
	collectorsOf := map[uint32][]*Collector{}
	for _, c := range in.Collectors {
		for _, p := range c.Peers {
			collectorsOf[p.ASN] = append(collectorsOf[p.ASN], c)
		}
	}
	bufs := map[string]*bytes.Buffer{}
	writers := map[string]*mrt.Writer{}
	for _, c := range in.Collectors {
		b := &bytes.Buffer{}
		bufs[c.Name] = b
		writers[c.Name] = mrt.NewWriter(b)
	}

	enc := newMsgEncoder()
	for _, m := range msgs {
		// rec.Body aliases the encoder's scratch buffer; WriteRecord
		// copies it into the bufio layer before the next iteration.
		rec, ok := enc.encode(in, cfg, m)
		if !ok {
			continue
		}
		for _, c := range collectorsOf[m.peer.ASN] {
			writers[c.Name].WriteRecord(rec)
		}
	}
	out := map[string][]byte{}
	for name, w := range writers {
		if err := w.Flush(); err != nil {
			panic("collector: updates flush: " + err.Error())
		}
		out[name] = bufs[name].Bytes()
	}
	return out
}

// packMessages merges adjacent messages from the same peer at the same
// instant that share path attributes — BGP routers pack all NLRI with
// identical attributes into one UPDATE, which is why prefixes of one
// atom appear together in single update records even when they span
// generator units.
func packMessages(msgs []message) []message {
	const maxPerMsg = 200
	out := msgs[:0]
	for _, m := range msgs {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.peer == m.peer && prev.t == m.t && prev.withdraw == m.withdraw &&
				prev.path.Equal(m.path) && len(prev.prefixes)+len(m.prefixes) <= maxPerMsg {
				merged := make([]netip.Prefix, 0, len(prev.prefixes)+len(m.prefixes))
				merged = append(merged, prev.prefixes...)
				merged = append(merged, m.prefixes...)
				prev.prefixes = merged
				continue
			}
		}
		out = append(out, m)
	}
	return out
}

// msgEncoder holds the encode scratch reused across messages: one
// Update, its NLRI slice, a preboxed AS_PATH attribute whose segment is
// repointed per message, interned NEXT_HOP attributes, and the two
// output buffers. Steady-state encoding of an IPv4 message is
// allocation-free.
type msgEncoder struct {
	upd       bgp.Update
	nlri      []bgp.NLRI
	segs      [1]aspath.Segment
	pathAttr  bgp.Attr // boxed ASPath sharing segs[0]
	emptyPath bgp.Attr // boxed ASPath with no segments
	nextHops  map[netip.Addr]bgp.Attr
	msg       mrt.Message
	msgBuf    []byte
	bodyBuf   []byte
}

func newMsgEncoder() *msgEncoder {
	e := &msgEncoder{nextHops: map[netip.Addr]bgp.Attr{}}
	e.segs[0] = aspath.Segment{Type: aspath.SegSequence}
	// The boxed copy's Path.Segments still points at e.segs, so
	// repointing e.segs[0].ASNs retargets the attribute without
	// re-boxing.
	e.pathAttr = bgp.ASPath{Path: aspath.Path{Segments: e.segs[:1]}}
	e.emptyPath = bgp.ASPath{}
	return e
}

// nextHopAttr returns the interned boxed NEXT_HOP for addr.
func (e *msgEncoder) nextHopAttr(addr netip.Addr) bgp.Attr {
	if a, ok := e.nextHops[addr]; ok {
		return a
	}
	a := bgp.NextHop(addr)
	e.nextHops[addr] = a
	return a
}

// encode builds the MRT record for one message. The returned record's
// Body aliases the encoder's scratch and is only valid until the next
// encode call.
func (e *msgEncoder) encode(in *Infra, cfg UpdateConfig, m message) (mrt.Record, bool) {
	if len(m.prefixes) == 0 {
		return mrt.Record{}, false
	}
	ts := cfg.BaseTime + uint32((m.t-cfg.FromT)*86400)
	opts := bgp.Options{AS4: true}
	subtype := mrt.SubMessageAS4
	if m.peer.Artifact == ArtifactAddPath {
		// The defect: the peer encodes ADD-PATH NLRI, the collector
		// stamps a non-ADD-PATH subtype. Downstream parsers warn or see
		// phantom prefixes (§A8.3.1). Occasionally the collector writes
		// an outright unknown subtype.
		opts.AddPath = true
		if unitc(in.Seed, 0xadd2, uint64(m.peer.ASN), uint64(ts)) < 0.1 {
			subtype = 77
		}
	}

	v4 := true
	for _, p := range m.prefixes {
		if p.Addr().Is6() && !p.Addr().Is4In6() {
			v4 = false
			break
		}
	}
	var err error
	if v4 {
		// Fast path: build the UPDATE in the reused scratch. Matches
		// NewAnnouncement/NewWithdrawal byte-for-byte for IPv4.
		e.nlri = e.nlri[:0]
		for _, p := range m.prefixes {
			e.nlri = append(e.nlri, bgp.NLRI{Prefix: p})
		}
		u := &e.upd
		u.Withdrawn = u.Withdrawn[:0]
		u.Attrs = u.Attrs[:0]
		u.Announced = u.Announced[:0]
		if m.withdraw {
			u.Withdrawn = e.nlri
		} else {
			pa := e.emptyPath
			if len(m.path) > 0 {
				e.segs[0].ASNs = m.path
				pa = e.pathAttr
			}
			u.Attrs = append(u.Attrs, bgp.Origin(bgp.OriginIGP), pa, e.nextHopAttr(m.peer.Addr))
			u.Announced = e.nlri
		}
		e.msgBuf, err = u.AppendMessage(e.msgBuf[:0], opts)
	} else {
		// IPv6 (or mixed, which errors): the cold path keeps the
		// validating constructors.
		var upd *bgp.Update
		if m.withdraw {
			upd, err = bgp.NewWithdrawal(m.prefixes)
		} else {
			upd, err = bgp.NewAnnouncement(m.path, m.peer.Addr, m.prefixes)
		}
		if err != nil {
			return mrt.Record{}, false
		}
		e.msgBuf, err = upd.AppendMessage(e.msgBuf[:0], opts)
	}
	if err != nil {
		return mrt.Record{}, false
	}
	e.msg = mrt.Message{
		PeerAS: m.peer.ASN, LocalAS: 12654,
		PeerAddr: m.peer.Addr, LocalAddr: netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		Data: e.msgBuf, AS4: true,
	}
	e.bodyBuf, err = e.msg.AppendMarshal(e.bodyBuf[:0])
	if err != nil {
		return mrt.Record{}, false
	}
	return mrt.Record{Timestamp: ts, Type: mrt.TypeBGP4MP, Subtype: subtype, Body: e.bodyBuf}, true
}
