package collector

import (
	"net/netip"
	"sort"

	"repro/internal/aspath"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sanitize"
	"repro/internal/topology"
)

// BuildFeeds computes every peer feed's routing table in memory — the
// longitudinal fast path. It produces the same logical content as
// BuildRIBs → MRT → bgpstream → sanitize ingestion, skipping the wire
// round-trip: partial-feed subsetting, ghost prefixes, private-ASN
// insertion, duplicate counting, and stale stuck feeds are all applied
// identically (the same hash decisions), so sanitize.CleanFeeds yields
// the same snapshot either way. TestFastPathEquivalence holds the two
// paths together.
//
// The ADD-PATH artifact has no feed-level representation (it is a wire
// encoding defect); its detection signal travels via update-stream
// warnings in both paths.
func BuildFeeds(g *topology.Graph, in *Infra, ov *routing.Overlay, ts uint32) []*sanitize.Feed {
	peerSet := map[uint32]*Peer{}
	var vps, stuckVPs []uint32
	for _, cp := range in.AllPeers() {
		if _, ok := peerSet[cp.Peer.ASN]; ok {
			continue
		}
		peerSet[cp.Peer.ASN] = cp.Peer
		if cp.Peer.Artifact == ArtifactStuck {
			stuckVPs = append(stuckVPs, cp.Peer.ASN)
		} else {
			vps = append(vps, cp.Peer.ASN)
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	sort.Slice(stuckVPs, func(i, j int) bool { return stuckVPs[i] < stuckVPs[j] })

	// Per-prefix routes are a dense slice with one slot per VP (carved
	// from a chunked arena), not an inner map: the map-per-prefix
	// version dominated this function's allocation profile.
	nVPs := len(vps) + len(stuckVPs)
	vpIdx := make(map[uint32]int, nVPs)
	for i, vp := range vps {
		vpIdx[vp] = i
	}
	for i, vp := range stuckVPs {
		vpIdx[vp] = len(vps) + i
	}
	type feedCell struct {
		e  routeEntry
		ok bool
	}
	routes := map[netip.Prefix][]feedCell{}
	var cellArena []feedCell
	merge := func(pfx netip.Prefix, vp uint32, r routing.VPRoute) {
		cells := routes[pfx]
		if cells == nil {
			if len(cellArena) < nVPs {
				sz := 4096
				if nVPs > sz {
					sz = nVPs
				}
				cellArena = make([]feedCell, sz)
			}
			cells = cellArena[:nVPs:nVPs]
			cellArena = cellArena[nVPs:]
			routes[pfx] = cells
		}
		c := &cells[vpIdx[vp]]
		cand := routeEntry{class: r.Class, cost: r.Cost, path: r.Path}
		if !c.ok || better(cand, c.e) {
			c.e, c.ok = cand, true
		}
	}
	moves := routing.BuildMoveSet(ov)
	eng := routing.NewEngine(g, ov)
	shifted := hasShifts(ov, vps)
	for _, u := range g.Groups {
		prefixes := moves.UnitPrefixes(u)
		if len(prefixes) == 0 {
			continue
		}
		rs := eng.PathsAt(u, vps)
		var alts []routing.VPRoute
		if shifted {
			alts = eng.AltPathsAt(vps)
		}
		for i, r := range rs {
			if r.Path == nil {
				continue
			}
			for _, pfx := range prefixes {
				merge(pfx, vps[i], shiftRoute(ov, vps[i], pfx, r, alts, i))
			}
		}
	}
	if len(stuckVPs) > 0 {
		stale := routing.NewEngine(g, nil)
		for _, u := range g.Groups {
			rs := stale.PathsAt(u, stuckVPs)
			for i, r := range rs {
				if r.Path == nil {
					continue
				}
				for _, pfx := range u.Prefixes {
					merge(pfx, stuckVPs[i], r)
				}
			}
		}
	}

	var feeds []*sanitize.Feed
	for _, c := range in.Collectors {
		for _, p := range c.Peers {
			f := &sanitize.Feed{
				VP:     core.VP{Collector: c.Name, ASN: p.ASN},
				Time:   ts,
				Routes: map[netip.Prefix]aspath.Seq{},
			}
			idx, tracked := vpIdx[p.ASN]
			for pfx, perVP := range routes {
				if !tracked || !perVP[idx].ok {
					continue
				}
				r := perVP[idx].e
				if !p.FullFeed && unitc(in.Seed, 0xfeed, uint64(p.ASN), prefixLabel(pfx)) >= p.PartialShare {
					continue
				}
				path := r.path
				if p.Artifact == ArtifactPrivateASN && len(path) > 0 {
					mod := make(aspath.Seq, 0, len(path)+1)
					mod = append(mod, path[0], 65000)
					mod = append(mod, path[1:]...)
					path = mod
				}
				f.Routes[pfx] = path
				if p.Artifact == ArtifactDuplicates && unitc(in.Seed, 0xd0b1, uint64(p.ASN), prefixLabel(pfx)) < 0.15 {
					f.Duplicates++
				}
			}
			if p.GhostShare > 0 {
				n := int(p.GhostShare * float64(len(routes)) * p.PartialShare)
				for j := 0; j < n; j++ {
					pfx := ghostPrefix(p.ASN, j)
					fakeOrigin := uint32(900000 + pickc(100000, in.Seed, 0x6057, uint64(p.ASN), uint64(j)))
					f.Routes[pfx] = aspath.Seq{p.ASN, fakeOrigin}
				}
			}
			feeds = append(feeds, f)
		}
	}
	return feeds
}
