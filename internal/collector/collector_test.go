package collector

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/routing"
	"repro/internal/topology"
)

func testGraph(t *testing.T, era topology.Era) *topology.Graph {
	t.Helper()
	p := topology.DefaultParams(21)
	p.Scale = 0.01
	return topology.Generate(p, era)
}

func TestBuildInfraBasics(t *testing.T) {
	g := testGraph(t, topology.EraOf(2024, 1))
	in := BuildInfra(g, Config{Seed: 3, Artifacts: true})
	if len(in.Collectors) < 2 {
		t.Fatalf("collectors = %d", len(in.Collectors))
	}
	full := in.FullFeedASNs()
	if len(full) < 5 {
		t.Fatalf("full feeds = %d", len(full))
	}
	// Every peer AS must exist in the graph.
	for _, cp := range in.AllPeers() {
		if g.AS(cp.Peer.ASN) == nil {
			t.Errorf("peer %d not in graph", cp.Peer.ASN)
		}
		if !cp.Peer.FullFeed && (cp.Peer.PartialShare <= 0 || cp.Peer.PartialShare > 1) {
			t.Errorf("partial peer %d share %v", cp.Peer.ASN, cp.Peer.PartialShare)
		}
	}
	// Deterministic.
	in2 := BuildInfra(g, Config{Seed: 3, Artifacts: true})
	if len(in2.Collectors) != len(in.Collectors) {
		t.Error("non-deterministic collectors")
	}
	for i, c := range in.Collectors {
		if len(c.Peers) != len(in2.Collectors[i].Peers) {
			t.Error("non-deterministic peers")
		}
	}
}

func TestBuildInfraGrowth(t *testing.T) {
	gEarly := testGraph(t, topology.EraOf(2005, 1))
	gLate := testGraph(t, topology.EraOf(2024, 1))
	early := BuildInfra(gEarly, Config{Seed: 3})
	late := BuildInfra(gLate, Config{Seed: 3})
	if len(late.FullFeedASNs()) <= len(early.FullFeedASNs()) {
		t.Errorf("full feeds did not grow: %d -> %d",
			len(early.FullFeedASNs()), len(late.FullFeedASNs()))
	}
	// Earlier full-feed peers remain peers later (identity stability).
	lateSet := map[uint32]bool{}
	for _, a := range late.FullFeedASNs() {
		lateSet[a] = true
	}
	missing := 0
	for _, a := range early.FullFeedASNs() {
		if !lateSet[a] {
			missing++
		}
	}
	if missing > len(early.FullFeedASNs())/5 {
		t.Errorf("%d/%d early full feeds vanished", missing, len(early.FullFeedASNs()))
	}
}

func TestBuildInfraForced2002(t *testing.T) {
	g := testGraph(t, topology.EraOf(2002, 1))
	in := BuildInfra(g, Config{Seed: 3, ForceCollectors: 1, ForceFullFeeds: 13})
	if len(in.Collectors) != 1 {
		t.Fatalf("collectors = %d", len(in.Collectors))
	}
	if got := len(in.FullFeedASNs()); got != 13 {
		t.Fatalf("full feeds = %d, want 13", got)
	}
	for _, cp := range in.AllPeers() {
		if !cp.Peer.FullFeed {
			t.Error("partial peer in forced-2002 infra")
		}
		if cp.Peer.Artifact != ArtifactNone {
			t.Error("artifact in clean infra")
		}
	}
}

func buildSnapshot(t *testing.T, g *topology.Graph, in *Infra, ov *routing.Overlay) *Snapshot {
	t.Helper()
	return BuildRIBs(g, in, ov, EpochOf(g.Era))
}

func TestBuildRIBsRoundTrip(t *testing.T) {
	g := testGraph(t, topology.EraOf(2010, 1))
	in := BuildInfra(g, Config{Seed: 3})
	snap := buildSnapshot(t, g, in, nil)
	if len(snap.Archives) != len(in.Collectors) {
		t.Fatalf("archives = %d", len(snap.Archives))
	}
	var sources []bgpstream.Source
	for name, data := range snap.Archives {
		if len(data) == 0 {
			t.Fatalf("empty archive %s", name)
		}
		sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	s := bgpstream.NewStream(nil, sources...)
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) == 0 {
		t.Fatal("no elements")
	}
	v4, _ := g.TotalPrefixes()
	// Count distinct prefixes across archives.
	prefixes := map[string]bool{}
	paths := 0
	for _, e := range elems {
		if e.Type != bgpstream.ElemRIB {
			t.Fatalf("unexpected elem type %v", e.Type)
		}
		prefixes[e.Prefix.String()] = true
		if len(e.Path.Segments) > 0 {
			paths++
		}
		// Path origin must be the last hop; path first hop must be the peer.
		seq, err := e.Path.Sequence()
		if err != nil {
			t.Fatalf("bad path: %v", err)
		}
		if len(seq) == 0 || seq[0] != e.PeerASN {
			t.Fatalf("path %v does not start at peer %d", seq, e.PeerASN)
		}
	}
	if len(prefixes) < v4/2 {
		t.Errorf("only %d distinct prefixes for %d originated", len(prefixes), v4)
	}
	if len(s.Warnings()) != 0 {
		t.Errorf("clean build produced warnings: %+v", s.Warnings()[:min(3, len(s.Warnings()))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBuildRIBsArtifacts(t *testing.T) {
	g := testGraph(t, topology.EraOf(2022, 1))
	in := BuildInfra(g, Config{Seed: 5, Artifacts: true})
	// Ensure at least one artifact peer of each interesting kind exists;
	// if the hash assignment missed one at this scale, force it.
	var havePriv, haveDup bool
	for _, cp := range in.AllPeers() {
		switch cp.Peer.Artifact {
		case ArtifactPrivateASN:
			havePriv = true
		case ArtifactDuplicates:
			haveDup = true
		}
	}
	if !havePriv {
		in.Collectors[0].Peers[0].Artifact = ArtifactPrivateASN
	}
	if !haveDup {
		in.Collectors[0].Peers[1].Artifact = ArtifactDuplicates
	}
	snap := buildSnapshot(t, g, in, nil)

	var sources []bgpstream.Source
	for name, data := range snap.Archives {
		sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	elems, err := bgpstream.NewStream(nil, sources...).All()
	if err != nil {
		t.Fatal(err)
	}
	privSeen := map[uint32]int{}
	dupCheck := map[string]int{}
	for _, e := range elems {
		seq, _ := e.Path.Sequence()
		if len(seq) >= 2 && seq[1] == 65000 {
			privSeen[e.PeerASN]++
		}
		key := e.Collector + "|" + e.Prefix.String() + "|" + string(rune(e.PeerASN))
		dupCheck[key]++
	}
	if len(privSeen) == 0 {
		t.Error("private-ASN artifact not visible in data")
	}
	dups := 0
	for _, n := range dupCheck {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("duplicate artifact not visible in data")
	}
}

func TestBuildRIBsOverlayChangesPaths(t *testing.T) {
	g := testGraph(t, topology.EraOf(2016, 1))
	in := BuildInfra(g, Config{Seed: 3})
	model := routing.ChurnModel{Seed: 9, UnitEventRate: 0.4, VPEventRate: 0.05, TransitFlipShare: 0.4}
	vps := in.FullFeedASNs()
	s1 := buildSnapshot(t, g, in, model.OverlayAt(g, 0, vps))
	s2 := BuildRIBs(g, in, model.OverlayAt(g, 30, vps), EpochOf(g.Era)+30*86400)
	same := true
	for name := range s1.Archives {
		if string(s1.Archives[name]) != string(s2.Archives[name]) {
			same = false
		}
	}
	if same {
		t.Error("30 days of churn left every archive identical")
	}
}

func TestBuildUpdates(t *testing.T) {
	g := testGraph(t, topology.EraOf(2018, 1))
	in := BuildInfra(g, Config{Seed: 3, Artifacts: true})
	cfg := UpdateConfig{
		Model:           routing.ChurnModel{Seed: 9, UnitEventRate: 0.6, VPEventRate: 0.05, TransitFlipShare: 0.4},
		FromT:           0,
		ToT:             4.0 / 24.0, // 4 hours
		BaseTime:        EpochOf(g.Era),
		FullMessageProb: 0.8,
		FlapRate:        0.05,
	}
	archives := BuildUpdates(g, in, cfg)
	if len(archives) != len(in.Collectors) {
		t.Fatalf("archives = %d", len(archives))
	}
	var sources []bgpstream.Source
	total := 0
	for name, data := range archives {
		total += len(data)
		sources = append(sources, bgpstream.BytesSource(name, data, bgp.Options{}))
	}
	if total == 0 {
		t.Fatal("no update data generated")
	}
	s := bgpstream.NewStream(nil, sources...)
	elems, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	ann, wd := 0, 0
	groupSizes := map[int]int{}
	lastTS := uint32(0)
	perCollector := map[string][]uint32{}
	for _, e := range elems {
		switch e.Type {
		case bgpstream.ElemAnnounce:
			ann++
			groupSizes[e.MsgIndex]++
		case bgpstream.ElemWithdraw:
			wd++
		}
		perCollector[e.Collector] = append(perCollector[e.Collector], e.Timestamp)
		_ = lastTS
	}
	if ann == 0 || wd == 0 {
		t.Fatalf("announcements=%d withdrawals=%d", ann, wd)
	}
	// Time-ordering within each collector.
	for name, ts := range perCollector {
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Fatalf("%s: timestamps unordered at %d", name, i)
			}
		}
	}
	// Some updates must carry multiple prefixes (atom-level moves).
	multi := 0
	for _, n := range groupSizes {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-prefix updates — atom-level correlation impossible")
	}
}

func TestEpochMonotone(t *testing.T) {
	prev := uint32(0)
	for e := topology.EraOf(2002, 1); e <= topology.EraOf(2024, 4); e++ {
		ts := EpochOf(e)
		if ts <= prev {
			t.Fatalf("epoch not monotone at era %v", e)
		}
		prev = ts
	}
}

func TestArtifactString(t *testing.T) {
	for a, want := range map[Artifact]string{
		ArtifactNone: "none", ArtifactAddPath: "addpath", ArtifactPrivateASN: "private-asn",
		ArtifactDuplicates: "duplicates", ArtifactStuck: "stuck", Artifact(99): "unknown",
	} {
		if a.String() != want {
			t.Errorf("Artifact(%d) = %q", a, a.String())
		}
	}
}
