// Package collector simulates the RIPE RIS / RouteViews collection
// infrastructure over a topology.Graph: collectors with full- and
// partial-feed peers, MRT RIB snapshot dumps, BGP4MP update streams
// driven by the routing churn model, and deliberate artifact injection —
// ADD-PATH encoding mismatches, a private-ASN-prepending misconfigured
// peer, duplicate-route peers, stuck (stale) feeds, and ghost prefixes —
// the exact data defects the paper's sanitization pipeline (§2.4, §A8.3)
// exists to remove.
package collector

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sort"

	"repro/internal/topology"
)

// Artifact marks a deliberate defect in a peer's feed.
type Artifact uint8

// Artifact kinds.
const (
	ArtifactNone Artifact = iota
	// ArtifactAddPath: the peer negotiates ADD-PATH but the collector
	// records its updates under a non-ADD-PATH subtype (§A8.3.1).
	ArtifactAddPath
	// ArtifactPrivateASN: the peer inserts a private ASN (65000) after
	// its own ASN in every path (§A8.3.2).
	ArtifactPrivateASN
	// ArtifactDuplicates: the peer sends >10% of its prefixes twice.
	ArtifactDuplicates
	// ArtifactStuck: the peer's RIB is stale — it ignores churn.
	ArtifactStuck
)

// String names the artifact.
func (a Artifact) String() string {
	switch a {
	case ArtifactNone:
		return "none"
	case ArtifactAddPath:
		return "addpath"
	case ArtifactPrivateASN:
		return "private-asn"
	case ArtifactDuplicates:
		return "duplicates"
	case ArtifactStuck:
		return "stuck"
	default:
		return "unknown"
	}
}

// Peer is one BGP feed into a collector.
type Peer struct {
	ASN      uint32
	Addr     netip.Addr
	FullFeed bool
	// PartialShare is the fraction of prefixes a partial feed carries.
	PartialShare float64
	// GhostShare is the fraction of fabricated, highly local prefixes a
	// partial feed adds (visible only here).
	GhostShare float64
	Artifact   Artifact
}

// Collector is one RIS/RouteViews-style collector.
type Collector struct {
	Name  string
	ID    netip.Addr
	Peers []*Peer
}

// Infra is the collection infrastructure for one era.
type Infra struct {
	Era        topology.Era
	Seed       uint64
	Collectors []*Collector
}

// AllPeers returns every (collector, peer) pairing.
func (in *Infra) AllPeers() []struct {
	Collector *Collector
	Peer      *Peer
} {
	var out []struct {
		Collector *Collector
		Peer      *Peer
	}
	for _, c := range in.Collectors {
		for _, p := range c.Peers {
			out = append(out, struct {
				Collector *Collector
				Peer      *Peer
			}{c, p})
		}
	}
	return out
}

// FullFeedASNs returns the distinct ASNs of full-feed peers.
func (in *Infra) FullFeedASNs() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, c := range in.Collectors {
		for _, p := range c.Peers {
			if p.FullFeed && !seen[p.ASN] {
				seen[p.ASN] = true
				out = append(out, p.ASN)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Config controls infrastructure construction.
type Config struct {
	Seed uint64
	// VPScale scales paper-scale peer counts; zero defaults to
	// sqrt(topology scale) chosen by the caller.
	VPScale float64
	// ForceCollectors pins the collector count (0 = era default). The
	// 2002 reproduction uses 1 collector ("rrc00") with 13 full feeds.
	ForceCollectors int
	// ForceFullFeeds pins the full-feed peer count (0 = era default).
	ForceFullFeeds int
	// Artifacts enables defect injection (on for the longitudinal study,
	// off for the clean 2002 reproduction).
	Artifacts bool
}

// peer-count curves at paper scale.
var (
	fullFeedCurve = topology.Curve{V2002: 13, V2004: 45, V2024: 600}
	partialCurve  = topology.Curve{V2002: 0, V2004: 5, V2024: 500}
)

// BuildInfra selects peers from the graph and wires them to collectors.
// Peer identity is stable: as eras advance, the peer set grows without
// reshuffling earlier members.
func BuildInfra(g *topology.Graph, cfg Config) *Infra {
	in := &Infra{Era: g.Era, Seed: cfg.Seed}
	vpScale := cfg.VPScale
	if vpScale <= 0 {
		vpScale = math.Sqrt(g.Params.Scale)
	}

	nFull := cfg.ForceFullFeeds
	if nFull == 0 {
		nFull = int(fullFeedCurve.At(g.Era)*vpScale + 0.5)
		if nFull < 8 {
			nFull = 8
		}
	}
	nPartial := 0
	if cfg.ForceFullFeeds == 0 {
		nPartial = int(partialCurve.At(g.Era)*vpScale + 0.5)
	}

	candidates := peerCandidates(g, cfg.Seed)
	if nFull > len(candidates) {
		nFull = len(candidates)
	}
	if nFull+nPartial > len(candidates) {
		nPartial = len(candidates) - nFull
	}

	nColl := cfg.ForceCollectors
	if nColl == 0 {
		nColl = nFull/12 + 2
	}
	for i := 0; i < nColl; i++ {
		name := fmt.Sprintf("rrc%02d", i)
		if i%2 == 1 {
			name = fmt.Sprintf("route-views%d", i/2+2)
		}
		in.Collectors = append(in.Collectors, &Collector{
			Name: name,
			ID:   netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
		})
	}

	assign := func(idx int, p *Peer) {
		primary := pickc(nColl, cfg.Seed, 0xa110, uint64(p.ASN))
		in.Collectors[primary].Peers = append(in.Collectors[primary].Peers, p)
		if nColl > 1 && unitc(cfg.Seed, 0xa111, uint64(p.ASN)) < 0.3 {
			secondary := (primary + 1 + pickc(nColl-1, cfg.Seed, 0xa112, uint64(p.ASN))) % nColl
			in.Collectors[secondary].Peers = append(in.Collectors[secondary].Peers, p)
		}
		_ = idx
	}

	for k := 0; k < nFull; k++ {
		asn := candidates[k]
		p := &Peer{ASN: asn, Addr: peerAddr(asn), FullFeed: true}
		if cfg.Artifacts {
			p.Artifact = artifactFor(cfg.Seed, asn, g.Era)
		}
		assign(k, p)
	}
	for k := 0; k < nPartial; k++ {
		asn := candidates[nFull+k]
		p := &Peer{
			ASN: asn, Addr: peerAddr(asn),
			PartialShare: 0.03 + 0.5*unitc(cfg.Seed, 0xa113, uint64(asn)),
			GhostShare:   0.01,
		}
		assign(nFull+k, p)
	}
	// Drop empty collectors (possible at tiny scales).
	var keep []*Collector
	for _, c := range in.Collectors {
		if len(c.Peers) > 0 {
			keep = append(keep, c)
		}
	}
	in.Collectors = keep
	return in
}

// artifactFor assigns defects to a small, era-gated set of peers.
func artifactFor(seed uint64, asn uint32, era topology.Era) Artifact {
	r := unitc(seed, 0xa114, uint64(asn))
	switch {
	case era >= topology.EraOf(2020, 1) && r < 0.03:
		return ArtifactAddPath
	case era >= topology.EraOf(2020, 1) && r < 0.04:
		return ArtifactPrivateASN
	case r < 0.055:
		return ArtifactDuplicates
	case r < 0.065:
		return ArtifactStuck
	default:
		return ArtifactNone
	}
}

// peerCandidates orders potential vantage-point ASes: transits and
// clique first (real full feeds are big ISPs), then content, then a few
// stubs — shuffled deterministically within classes so growth adds
// varied peers.
func peerCandidates(g *topology.Graph, seed uint64) []uint32 {
	var core, content, stubs []uint32
	for _, a := range g.ASes {
		switch a.Tier {
		case topology.TierClique, topology.TierTransit:
			core = append(core, a.ASN)
		case topology.TierContent:
			content = append(content, a.ASN)
		default:
			if unitc(seed, 0xa115, uint64(a.ASN)) < 0.05 {
				stubs = append(stubs, a.ASN)
			}
		}
	}
	shuffle := func(s []uint32, salt uint64) {
		sort.Slice(s, func(i, j int) bool {
			return hhc(seed, salt, uint64(s[i])) < hhc(seed, salt, uint64(s[j]))
		})
	}
	shuffle(core, 0xa116)
	shuffle(content, 0xa117)
	shuffle(stubs, 0xa118)
	out := append(core, content...)
	return append(out, stubs...)
}

// peerAddr derives a unique, stable peer address.
func peerAddr(asn uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], 0xAC100000|asn&0x000FFFFF) // 172.16.0.0/12 pool
	return netip.AddrFrom4(b)
}

// EpochOf maps an era to a synthetic Unix timestamp for its first
// snapshot (the 15th of the quarter's first month, 8:00 UTC — shape
// only; absolute values are arbitrary but monotone and deterministic).
func EpochOf(era topology.Era) uint32 {
	// 90 days per quarter from a 2002Q1 base.
	base := int64(1009843200) // 2002-01-01
	return uint32(base + (int64(era)+8)*90*86400 + 14*86400 + 8*3600)
}

// Local label-addressed hash helpers.
func hhc(vals ...uint64) uint64 {
	acc := uint64(0x2545f4914f6cdd1d)
	for _, v := range vals {
		v += 0x9e3779b97f4a7c15
		v = (v ^ acc ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		acc = v ^ (v >> 31)
	}
	return acc
}

func unitc(vals ...uint64) float64 {
	return float64(hhc(vals...)>>11) / float64(1<<53)
}

func pickc(n int, vals ...uint64) int {
	if n <= 0 {
		return 0
	}
	return int(hhc(vals...) % uint64(n))
}
