package lintkit

import (
	"go/ast"
	"strings"
)

// runClockSeam enforces the clock discipline in clockScopedPkgs: the
// wall clock and the process environment may be touched only inside the
// declarations listed in clockExemptDecls. Unlike the
// deterministic-package sweep this flags *references*, not just calls —
// `f := time.Now` stored for later escapes the seam exactly as a direct
// call does, because tests that swap clockNow for a fake never see it.
func runClockSeam(pass *Pass) {
	info := pass.Pkg.Info
	short := pass.Pkg.Path
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	exempt := func(name string) bool {
		_, ok := clockExemptDecls[short+"."+name]
		return ok
	}
	check := func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case pkgSel(info, sel, "time", "Now"):
				pass.Reportf(sel.Pos(), "time.Now outside the clock seam: read the clock through obs.clockNow")
			case pkgSel(info, sel, "time", "Since"):
				pass.Reportf(sel.Pos(), "time.Since outside the clock seam: diff two obs.clockNow readings instead")
			case pkgSel(info, sel, "os", "Getenv"), pkgSel(info, sel, "os", "LookupEnv"):
				pass.Reportf(sel.Pos(), "environment read in a clock-scoped package: pass configuration through flags")
			}
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !exempt(d.Name.Name) {
					check(d)
				}
			case *ast.GenDecl:
				// Exemption is per value spec, so `var clockNow = time.Now`
				// stays clean without blessing its whole declaration block.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						check(spec)
						continue
					}
					specExempt := false
					for _, name := range vs.Names {
						if exempt(name.Name) {
							specExempt = true
							break
						}
					}
					if !specExempt {
						check(vs)
					}
				}
			}
		}
	}
}
