package lintkit

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs names the packages whose outputs must be
// byte-identical at any worker count — the pipeline from raw feeds to
// atoms. internal/obs and internal/cli are not held to that bar — wall
// clocks are their job — but they get the clock-seam sweep below
// instead of a blanket pass.
var deterministicPkgs = []string{
	"core", "metrics", "longitudinal", "sanitize",
	"routing", "topology", "collector", "aspath",
	"replay",
}

// clockScopedPkgs names the packages where the wall clock may be read
// only through internal/obs's clockNow seam: tests swap the seam to pin
// trace/progress output byte for byte, so a stray direct time.Now or
// time.Since would silently escape the fake clock. Environment reads
// are flagged too — commands take configuration as flags.
var clockScopedPkgs = []string{"obs", "cli"}

// clockExemptDecls lists, as "<pkg>.<top-level decl>", the declarations
// allowed to reference the wall clock inside clockScopedPkgs, each with
// the reason it exists. This is the explicit, tested alternative to
// sprinkling //atomlint:ignore on intentional time.Now uses: one table,
// one seam, everything else is a finding.
var clockExemptDecls = map[string]string{
	"obs.clockNow": "the package's single wall-clock seam (internal/obs/span.go)",
}

// Determinism forbids ambient-nondeterminism sources (time.Now,
// math/rand, os.Getenv) inside the deterministic packages, restricts
// wall-clock reads in the clock-scoped packages to the exempted seam
// declarations, and flags map iteration whose results feed an ordered
// sink — an append to an outer slice with no subsequent sort, direct
// fmt output, or a Write call — since Go randomizes map iteration
// order per run.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/math∕rand/os.Getenv and unsorted map iteration in deterministic packages; restrict clock reads in obs/cli to the clockNow seam",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if hasSuffixPath(pass.Pkg.Path, clockScopedPkgs, "internal") {
		runClockSeam(pass)
	}
	if !hasSuffixPath(pass.Pkg.Path, deterministicPkgs, "internal") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package (seeded RNG must come from internal/topology's explicit generator)", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pkgFunc(info, call, "time", "Now"):
				pass.Reportf(call.Pos(), "time.Now in deterministic package: thread timestamps in as data")
			case pkgFunc(info, call, "os", "Getenv"), pkgFunc(info, call, "os", "LookupEnv"):
				pass.Reportf(call.Pos(), "environment read in deterministic package: pass configuration explicitly")
			}
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
}

// checkMapRanges flags map-range loops inside fd whose bodies feed an
// order-sensitive sink. An append into a slice declared outside the loop
// is accepted only when the same function later passes that slice to a
// sort call (any callee whose name contains "sort", e.g. sort.Slice,
// slices.Sort, prefixset.SortPrefixes).
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fd, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isNested := n.(*ast.RangeStmt); isNested && n != ast.Node(rng) {
			// Nested range loops get their own visit from checkMapRanges.
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				checkMapRangeAppend(pass, fd, rng, call)
			}
			return true
		}
		if p := pkgOf(info, call); p == "fmt" {
			name := calleeName(call.Fun)
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint") {
				pass.Reportf(call.Pos(), "fmt.%s inside map iteration: output order follows randomized map order", name)
			}
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
			if pkgOf(info, call) == "" { // a method call, not pkg.Func
				pass.Reportf(call.Pos(), "%s inside map iteration: bytes are emitted in randomized map order", sel.Sel.Name)
			}
		}
		return true
	})
}

// checkMapRangeAppend handles `out = append(out, ...)` inside a map
// range: fine when out is loop-local or later sorted, a finding
// otherwise.
func checkMapRangeAppend(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.Pkg.Info
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		// Appends to selector/index targets (struct fields, map cells)
		// still accumulate in map order; flag them unless sorted later —
		// matching on the expression text.
		text := exprText(pass.Pkg.Fset, call.Args[0])
		if text == "" || sortedAfterText(pass, fd, rng, text) {
			return
		}
		pass.Reportf(call.Pos(), "append to %s inside map iteration without a later sort", text)
		return
	}
	obj := info.Uses[target]
	if obj == nil {
		obj = info.Defs[target]
	}
	if obj == nil {
		return
	}
	// Declared inside the loop: each iteration gets its own slice.
	if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
		return
	}
	if sortedAfter(pass, fd, rng, obj) {
		return
	}
	pass.Reportf(call.Pos(), "append to %s inside map iteration without a later sort: element order follows randomized map order", target.Name)
}

// sortedAfter reports whether fd contains, after the range loop, a call
// to a sort-like function receiving obj.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			argFound := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					argFound = true
					return false
				}
				return true
			})
			if argFound {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort-like callees by their full source text:
// sort.Ints, sort.Slice, slices.Sort, prefixset.SortPrefixes, sortRows.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	return strings.Contains(strings.ToLower(exprText(pass.Pkg.Fset, call.Fun)), "sort")
}

// sortedAfterText is sortedAfter for non-ident append targets, matched
// by source text.
func sortedAfterText(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, text string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprText(pass.Pkg.Fset, arg) == text {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
