package lintkit

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the syntax trees plus the
// type information every analyzer consumes.
type Package struct {
	Path  string // import path, e.g. "repro/internal/bgp"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module using only the
// standard library: module-internal imports are resolved against the
// module directory, everything else is delegated to the GOROOT source
// importer. Test files are skipped — analyzers gate production code.
type Loader struct {
	ModPath string
	ModDir  string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
	errs    []error
}

// NewLoader returns a loader rooted at the module directory dir, reading
// the module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  abs,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lintkit: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the module package at the given import
// path, memoized across the whole LoadAll run.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lintkit: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModDir, filepath.FromSlash(rel))
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses the non-test Go files in dir and type-checks them as
// the package with the given import path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if excludedByBuildTags(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: %s", errNoGoFiles, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadAll loads every package under the module root (skipping testdata,
// vendor, and hidden directories), in deterministic path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.ModDir, dir)
		if err != nil {
			return err
		}
		ip := l.ModPath
		if rel != "." {
			ip = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedupe(paths)

	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if errors.Is(err, errNoGoFiles) {
			continue // every file in the dir is excluded by build tags
		}
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// errNoGoFiles marks a directory whose Go files are all excluded by
// build constraints — skipped by LoadAll, an error when imported.
var errNoGoFiles = errors.New("lintkit: no buildable Go files")

// LoadFixture type-checks a standalone directory as a package with the
// given (possibly synthetic) import path — the fixture-test entry point,
// which lets testdata packages impersonate scoped paths like
// "repro/internal/core".
func LoadFixture(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	l := &Loader{
		ModPath: importPath,
		ModDir:  dir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	return l.loadDir(dir, importPath)
}

// excludedByBuildTags reports whether a //go:build line above the
// package clause rules the file out for the current platform (tags like
// "ignore" on the helper scripts, or a foreign GOOS/GOARCH).
func excludedByBuildTags(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			ok := expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
			})
			if !ok {
				return true
			}
		}
	}
	return false
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
