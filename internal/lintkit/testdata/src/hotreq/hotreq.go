// Package bgpstream is the required-hotpath fixture: one pinned batch
// kernel exists but lost its annotation, and the other pinned name has
// no declaration at all (as if renamed without updating the analyzer's
// table). The aliasing registry's producers for this package are
// present and annotated so only the hotpath findings fire.
package bgpstream // want "required hot-path function (*Stream).fill not found in package"

// Stream is a stand-in for the decode stream.
type Stream struct {
	batch []int
	head  int
}

// recordReader satisfies the aliasing registry's interface producer.
type recordReader interface {
	//atomlint:borrowed view into reader-owned storage
	Next() ([]int, error)
}

// NextBatch is the pinned batch kernel. The real one carries
// //atomlint:hotpath; this one dropped it (the borrowed annotation is a
// different directive and must not satisfy the hotpath table).
//
//atomlint:borrowed batch is valid until the next call
func (s *Stream) NextBatch() []int { // want "pinned hot-path kernel"
	out := s.batch[s.head:]
	s.head = len(s.batch)
	return out
}

// drain is not in the required table, so its lack of annotation is
// fine — and without the annotation its allocations are not swept.
func (s *Stream) drain() []int {
	out := make([]int, 0, len(s.batch))
	out = append(out, s.batch[s.head:]...)
	return out
}

var _ recordReader = nil
