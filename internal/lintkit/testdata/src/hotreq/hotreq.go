// Package bgpstream is the required-hotpath fixture: the pinned batch
// kernel exists but lost its annotation, and the second pinned name has
// no declaration at all (as if renamed without updating the analyzer's
// table).
package bgpstream // want "required hot-path function (*Stream).NextBatch not found in package"

// Stream is a stand-in for the decode stream.
type Stream struct {
	batch []int
	head  int
}

// fill refills the batch cursor. The real kernel carries
// //atomlint:hotpath; this one dropped it.
func (s *Stream) fill() bool { // want "pinned hot-path kernel"
	if s.head < len(s.batch) {
		return true
	}
	s.head = 0
	return false
}

// drain is not in the required table, so its lack of annotation is
// fine — and without the annotation its allocations are not swept.
func (s *Stream) drain() []int {
	out := make([]int, 0, len(s.batch))
	out = append(out, s.batch[s.head:]...)
	return out
}
