// Package hotfix exercises the hotpath analyzer: every allocating
// construct inside an //atomlint:hotpath function is a finding; the
// unannotated twin at the bottom must stay silent.
package hotfix

import "fmt"

type T struct{ a, b int }

//atomlint:hotpath
func hotBad(m map[string]int, b []byte, s string) (int, error) {
	p := &T{a: 1}                 // want "&composite literal"
	sl := []int{1, 2}             // want "slice literal"
	mm := map[string]int{}        // want "map literal"
	buf := make([]byte, 8)        // want "make in hot path"
	q := new(T)                   // want "new in hot path"
	str := fmt.Sprintf("%d", p.a) // want "fmt.Sprintf in hot path"
	c := string(b)                // want "conversion in hot path copies"
	d := []byte(s)                // want "conversion in hot path copies"
	f := func() int { return 1 }  // want "closure in hot path"
	return p.a + sl[0] + mm[s] + len(buf) + q.b + len(str) + len(c) + len(d) + f(), nil
}

//atomlint:hotpath
func hotGood(m map[string]int, b []byte) (int, error) {
	v, ok := m[string(b)] // the compiler-optimized lookup form is allowed
	if !ok {
		return 0, fmt.Errorf("missing key %q", b) // Errorf is the cold path
	}
	g := func() int { return v }() // called in place: does not escape
	var t T
	t = T{a: g} // value struct literal stays on the stack
	return t.a, nil
}

func coldTwin() *T {
	return &T{a: 3} // unannotated: the same construct is fine here
}

var _ = []any{hotBad, hotGood, coldTwin}
