// Package wirefix exercises the wiresafety analyzer. The test loads it
// under "repro/internal/bgp" so the wire-codec scope applies (under
// internal/mrt the hotpath kernel table would bleed in).
package wirefix

import "encoding/binary"

// Update satisfies the aliasing registry for the internal/bgp path:
// both registered zero-copy producers present and annotated, keeping
// this fixture wiresafety-only.
type Update struct{ attrs [][]byte }

// Attr returns the raw attribute view.
//
//atomlint:borrowed attribute views alias the decode buffer
func (u *Update) Attr(i int) []byte { return u.attrs[i] }

// ASPathAttr returns the merged path attribute view.
//
//atomlint:borrowed the merged path aliases cache-owned segments
func (u *Update) ASPathAttr() []byte { return u.attrs[0] }

func marshalUnguarded(name string, data []byte) []byte {
	var out []byte
	out = append(out, byte(len(name)))                          // want "narrows len(name)"
	out = binary.BigEndian.AppendUint16(out, uint16(len(data))) // want "uint16 narrows len(data)"
	return out
}

func marshalGuarded(name string, data []byte) ([]byte, bool) {
	if len(name) > 255 || len(data) > 0xffff {
		return nil, false
	}
	var out []byte
	out = append(out, byte(len(name)))
	out = binary.BigEndian.AppendUint16(out, uint16(len(data)))
	return out, true
}

func derivedUnguarded(b []byte, start int) uint16 {
	n := len(b) - start
	return uint16(n) // want "narrows length-derived n"
}

func derivedGuarded(b []byte, start int) uint16 {
	n := len(b) - start
	if n < 0 || n > 0xffff {
		return 0
	}
	return uint16(n)
}

func ParseUnguarded(b []byte) uint16 {
	return binary.BigEndian.Uint16(b[0:2]) // want "indexing b with no earlier len"
}

func ParseGuarded(b []byte) (uint16, bool) {
	if len(b) < 2 {
		return 0, false
	}
	return binary.BigEndian.Uint16(b[0:2]), true
}

func indexOutsideParse(b []byte) byte {
	return b[0] // not a Parse* function: indexing here is out of scope
}

var _ = []any{marshalUnguarded, marshalGuarded, derivedUnguarded, derivedGuarded, ParseUnguarded, ParseGuarded, indexOutsideParse}
