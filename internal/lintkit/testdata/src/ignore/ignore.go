// Package ignfix exercises //atomlint:ignore parsing and suppression.
// The test loads it under "repro/internal/core" so the determinism
// analyzer fires on every time.Now call, then checks which survive.
package ignfix

import "time"

func suppressedAbove() int64 {
	//atomlint:ignore determinism fixture: suppression on the line below
	return time.Now().Unix()
}

func suppressedSameLine() int64 {
	return time.Now().Unix() //atomlint:ignore determinism fixture: same-line form
}

func unsuppressed() int64 {
	return time.Now().Unix()
}

func wrongAnalyzer() int64 {
	//atomlint:ignore hotpath a directive for another analyzer must not suppress
	return time.Now().Unix()
}

func malformedDirective() int64 {
	//atomlint:ignore
	return time.Now().Unix()
}

func unknownAnalyzer() int64 {
	//atomlint:ignore nosuch the analyzer name does not exist
	return time.Now().Unix()
}

var _ = []any{suppressedAbove, suppressedSameLine, unsuppressed, wrongAnalyzer, malformedDirective, unknownAnalyzer}
