// Package aliasfix exercises the aliasing directive grammar: malformed
// owned/scratch declarations (no reason) are findings and suppress
// nothing, while a single well-formed //atomlint:ignore silences every
// same-analyzer finding on the line it covers. Checked programmatically
// (no want markers): a malformed directive's finding lands on the
// directive's own comment line, which cannot also carry a marker.
package aliasfix

// Reader hands out views into its buffer.
type Reader struct{ buf []byte }

// View returns the buffer as a borrowed slice.
//
//atomlint:borrowed view into the reader's buffer
func (r *Reader) View() []byte { return r.buf }

// DecodeInto writes a view of b through m.
//
//atomlint:borrowed m aliases b
func DecodeInto(m *[]byte, b []byte) error {
	*m = b
	return nil
}

// Sink is heap-reachable storage.
type Sink struct{ data []byte }

// Latest is a package-variable sink.
var Latest []byte

func malformedOwned(r *Reader, s *Sink) {
	//atomlint:owned
	s.data = r.View() // still a finding: the bare directive registered nothing
}

func malformedScratch(s *Sink, b []byte) {
	//atomlint:scratch
	DecodeInto(&s.data, b) // still a finding
}

func ignored(r *Reader, s *Sink) {
	v := r.View()
	//atomlint:ignore aliasing one directive covers every same-analyzer finding on the line
	s.data, Latest = v, v // two escapes, both suppressed
}
