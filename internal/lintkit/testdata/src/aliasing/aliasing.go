// Package aliasfix is the aliasing analyzer's golden fixture: a
// miniature zero-copy pipeline with annotated producers and every way a
// borrowed view can escape its ownership window, each marked with the
// expected diagnostic. The negative cases — copies, local propagation,
// owned/scratch declarations — must stay silent.
package aliasfix

// Reader is a zero-copy producer: Next hands out views into buf.
type Reader struct {
	buf []byte
	off int
}

// Record is a decoded view over reader-owned bytes.
type Record struct {
	Body []byte
	Kind int
}

// Next returns the next record; Body aliases the reader's buffer.
//
//atomlint:borrowed Body aliases the reader's buffer, valid until the next call
func (r *Reader) Next() (Record, error) {
	r.off++
	return Record{Body: r.buf[r.off:], Kind: r.off}, nil
}

// View returns the unread remainder as a borrowed slice.
//
//atomlint:borrowed view into the reader's buffer
func (r *Reader) View() []byte { return r.buf[r.off:] }

// DecodeInto is an out-param producer: m.Body aliases b.
//
//atomlint:borrowed m.Body aliases b
func DecodeInto(m *Record, b []byte) error {
	m.Body = b
	return nil
}

// source shows the interface-method annotation: dynamic dispatch through
// source.Next is a producer call too.
type source interface {
	//atomlint:borrowed view valid until the next call
	Next() (Record, error)
}

// Count is misannotated: no result or pointer parameter can hold a view
// (a value Reader is copied in; an int is copied out).
//
//atomlint:borrowed nothing aliases here
func Count(r Reader) int { return r.off } // want "nothing to borrow"

// Sink is heap-reachable storage a borrowed view must never land in.
type Sink struct {
	rec  Record
	data []byte
}

// Latest is the package-variable sink.
var Latest []byte

func use(Record) {}

func escapes(r *Reader, s *Sink, m map[int][]byte, dst []Record, ch chan Record) {
	rec, _ := r.Next()
	s.rec = rec       // want "heap-reachable field"
	Latest = rec.Body // want "package variable"
	m[1] = rec.Body   // want "stored in map"
	dst[0] = rec      // want "slice element"
	ch <- rec         // want "sent on a channel"
	go use(rec)       // want "passed to a goroutine"
	go func() {       // want "closure captures borrowed value rec"
		_ = rec.Body
	}()
}

func leaks(r *Reader) []byte {
	rec, _ := r.Next()
	return rec.Body // want "not an annotated producer"
}

func outparam(s *Sink, b []byte) {
	DecodeInto(&s.rec, b) // want "writes views through"
	var local Record
	DecodeInto(&local, b) // a local slot keeps the window local: silent
	use(local)
}

// derived taint: views sliced or reassigned off a borrowed value stay
// borrowed, through the interface producer too.
func derived(src source, s *Sink) {
	rec, _ := src.Next()
	body := rec.Body[4:]
	s.data = body // want "heap-reachable field"
}

// declared shows the two directives on their legitimate sites: an
// explicit ownership transfer and a declared scratch slot.
func declared(r *Reader, s *Sink, m map[int][]byte, b []byte) {
	rec, _ := r.Next()
	//atomlint:owned the sink's lifetime is pinned to the reader in this fixture
	s.rec = rec
	//atomlint:scratch s.rec is reused per window and never read across one
	DecodeInto(&s.rec, b)
	m[1] = append([]byte(nil), rec.Body...) // append-copy owns: silent
	s.data = []byte(string(rec.Body))       // string round-trip copies: silent
}

// localOnly keeps the view inside the window: propagation through
// locals, value structs, and ranges is silent.
func localOnly(r *Reader) int {
	rec, _ := r.Next()
	var e Record
	e.Body = rec.Body
	n := 0
	for _, b := range e.Body {
		n += int(b)
	}
	return n
}

// Peek may return a borrowed view because it is itself annotated.
//
//atomlint:borrowed passthrough view into the reader's buffer
func (r *Reader) Peek() []byte {
	return r.View()
}
