// Package lifefix is the lifecycle analyzer's golden fixture: every
// goroutine, ticker, WaitGroup, channel, and closable-field discipline
// violation the analyzer knows, each marked with its expected
// diagnostic — plus the disciplined versions of the same patterns,
// which must stay silent.
package lifefix

import (
	"fmt"
	"sync"
	"time"
)

var counter int

func spawnOpaque() {
	go fmt.Println("boot") // want "opaque callee"
}

func spawnNoJoin() {
	go func() { // want "no join or cancel path"
		counter++
	}()
}

func worker() { counter++ }

func spawnNamedNoJoin() {
	go worker() // want "goroutine runs worker, which has no join or cancel path"
}

func tickerLeak() {
	t := time.NewTicker(time.Second) // want "never Stopped"
	<-t.C
}

func timerLeak() {
	tm := time.NewTimer(time.Second) // want "never Stopped"
	<-tm.C
}

func tickLeak() {
	for range time.Tick(time.Second) { // want "time.Tick leaks its ticker"
		counter++
	}
}

func afterLoop(stop chan struct{}) {
	for {
		select {
		case <-time.After(time.Second): // want "time.After in a loop"
			counter++
		case <-stop:
			return
		}
	}
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "races Wait"
		wg.Done()
	}()
	wg.Wait()
}

func addWithoutWait(stop chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1) // want "Add but no Wait"
	go func() {
		defer wg.Done()
		<-stop
	}()
}

func loopFanout(stop chan struct{}) {
	for i := 0; i < 4; i++ {
		go func() { // want "unbounded fan-out"
			<-stop
		}()
	}
}

func parkedSender() {
	ch := make(chan int) // want "senders park forever"
	ch <- 1
}

// pump stores a ticker no method ever Stops.
type pump struct {
	tick *time.Ticker
}

func newPump() *pump {
	return &pump{tick: time.NewTicker(time.Second)} // want "no method of pump ever Stops it"
}

// conn is a closable resource.
type conn struct{ open bool }

// Close tears the connection down.
func (c *conn) Close() error { c.open = false; return nil }

// holder stores a closable no method ever closes.
type holder struct {
	c *conn
}

func fillHolder(h *holder) {
	h.c = &conn{open: true} // want "no method of holder ever closes it"
}

// --- the disciplined versions: all silent ---

// server wires both resources into its Close.
type server struct {
	c    *conn
	tick *time.Ticker
}

// NewServer hands ownership of both resources to the server.
func NewServer() *server {
	return &server{c: &conn{open: true}, tick: time.NewTicker(time.Second)}
}

// Close is the teardown path the field checks demand.
func (s *server) Close() error {
	s.tick.Stop()
	return s.c.Close()
}

// NewConn is the constructor idiom the local-resource check recognizes.
func NewConn() *conn { return &conn{open: true} }

func dialAndHandOff() *conn {
	c := NewConn() // escapes via return: the caller owns the teardown
	return c
}

func tickerStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func properWorkers(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counter++
		}()
	}
	wg.Wait()
}

func drainedChannel() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
