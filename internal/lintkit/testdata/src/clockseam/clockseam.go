// Package obs mirrors repro/internal/obs for the clock-seam sweep:
// inside a clock-scoped package, every wall-clock or environment read
// outside the exempt clockNow declaration is a finding — references
// included, not just calls.
package obs

import (
	"os"
	"time"
)

// clockNow is the sanctioned seam; clockExemptDecls blesses exactly
// this declaration, so referencing time.Now here is silent.
var clockNow = time.Now

// start reads the clock at package init, outside the seam.
var start = time.Now() // want "time.Now outside the clock seam"

// stamp calls the clock directly instead of going through the seam.
func stamp() int64 {
	return time.Now().Unix() // want "time.Now outside the clock seam"
}

// elapsed uses time.Since, which reads the wall clock internally.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since outside the clock seam"
}

// stored squirrels away a clock reference for later: a fake clock
// swapped into clockNow never sees these reads.
func stored() func() time.Time {
	f := time.Now // want "time.Now outside the clock seam"
	return f
}

// env reads configuration from the environment instead of flags.
func env() string {
	if v, ok := os.LookupEnv("ATOM_TRACE"); ok { // want "environment read in a clock-scoped package"
		return v
	}
	return os.Getenv("ATOM_DEBUG") // want "environment read in a clock-scoped package"
}

// viaSeam is the sanctioned pattern: read through clockNow, diff the
// readings for durations.
func viaSeam() time.Duration {
	t0 := clockNow()
	return clockNow().Sub(t0)
}

var (
	_ = start
	_ = stamp
	_ = elapsed
	_ = stored
	_ = env
	_ = viaSeam
)
