// Package lockfix exercises every locks-analyzer finding class. The
// locks analyzer is unscoped, so the import path does not matter.
package lockfix

import "sync"

// S is a lock-bearing type: any by-value copy of it is a finding.
type S struct {
	mu sync.Mutex
	n  int
}

// Striped mirrors the striped-lock table shape: the lock sits two
// levels deep, through an array of structs.
type Striped struct {
	shards [4]S
}

func byValueParam(s S) int { // want "parameter passes"
	return s.n
}

func (s S) byValueMethod() int { // want "receiver passes"
	return s.n
}

func stripedParam(t Striped) int { // want "parameter passes"
	return t.shards[0].n
}

func copyAssign(a *S) int {
	b := *a // want "assignment copies"
	return b.n
}

func rangeCopy(ss []S) int {
	n := 0
	for _, s := range ss { // want "range copies"
		n += s.n
	}
	return n
}

func pointerParamOK(s *S) int {
	return s.n
}

func lockNoUnlock(s *S) {
	s.mu.Lock() // want "no matching Unlock"
	s.n++
}

func lockReturnBetween(s *S, c bool) int {
	s.mu.Lock()
	if c {
		return 1 // want "leaves the lock held"
	}
	s.mu.Unlock()
	return 0
}

func unlockBeforeLock(s *S) {
	s.mu.Unlock()
	s.mu.Lock() // want "only unlocked before"
}

func lockDeferOK(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// R pairs a read-write mutex with the map it guards.
type R struct {
	mu sync.RWMutex
	m  map[string]int
}

func (r *R) readOK(k string) int {
	r.mu.RLock()
	v := r.m[k]
	r.mu.RUnlock()
	return v
}

func (r *R) readEarlyReturn(k string, skip bool) int {
	r.mu.RLock()
	if skip {
		return 0 // want "leaves the lock held"
	}
	v := r.m[k]
	r.mu.RUnlock()
	return v
}

var _ = []any{byValueParam, S.byValueMethod, stripedParam, copyAssign, rangeCopy, pointerParamOK,
	lockNoUnlock, lockReturnBetween, unlockBeforeLock, lockDeferOK, (*R).readOK, (*R).readEarlyReturn}
