// Package bgp exercises the requiredBorrowed registry: Attr is a
// registered zero-copy producer present but missing its annotation, and
// ASPathAttr is registered but absent from the package entirely — the
// rename guard fires on the package clause.
package bgp // want "producer (*Update).ASPathAttr not found in package"

// Update is a decoded BGP update carrying raw attribute views.
type Update struct {
	attrs [][]byte
}

// Attr returns the raw attribute view. It is in the requiredBorrowed
// table and must carry the annotation; this unannotated version is the
// finding under test.
func (u *Update) Attr(i int) []byte { return u.attrs[i] } // want "must carry //atomlint:borrowed"
