// Package detfix exercises the determinism analyzer. The test loads it
// under the synthetic import path "repro/internal/metrics" so the
// deterministic-package scope applies; loaded under an allowlisted path
// (e.g. "repro/internal/obs") the same sources must be clean.
package detfix

import (
	"fmt"
	"math/rand" // want "import of math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

func stamp() int64 {
	return time.Now().Unix() // want "time.Now in deterministic package"
}

func fromEnv() string {
	return os.Getenv("ATOM_SEED") // want "environment read in deterministic package"
}

func roll() int {
	return rand.Int()
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		n += len(scratch)
	}
	return n
}

func printKeys(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "fmt.Println inside map iteration"
	}
}

func writeKeys(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString inside map iteration"
	}
	return sb.String()
}

var _ = []any{stamp, fromEnv, roll, unsortedKeys, sortedKeys, loopLocal, printKeys, writeKeys}
