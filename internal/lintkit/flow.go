package lintkit

// flow.go is the intraprocedural value-flow engine under the aliasing
// analyzer (and the escape/usage helpers lifecycle shares): a
// per-function taint pass over assignments, composite literals, calls,
// returns, sends, and closures. "Taint" here means "this value may
// alias storage owned by a zero-copy producer" — a record body aliasing
// the archive backing array, an arena row, an interned path sequence.
// The engine is deliberately intraprocedural: a call's results are
// owned by the caller unless the callee is a registered borrowed
// producer, and a call's arguments are the callee's problem. That keeps
// the analysis linear in the function body and makes every finding
// locally explainable.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// flowFunc analyzes one function body. isSource designates the calls
// whose results are borrowed (the producer set); view classifies the
// types that can carry a borrowed reference. After run() the tainted
// set is a fixpoint: monotone (a variable once tainted stays tainted —
// re-owning a variable by overwriting it is not credited, only owning
// *expressions* like string(b) or append-copies are) and closed over
// assignments, := declarations, and range statements, including those
// inside nested closures (captured variables share types.Object
// identity with the enclosing scope, so taint flows in and out of
// func literals for free).
type flowFunc struct {
	pkg      *Package
	isSource func(*ast.CallExpr) bool
	view     func(types.Type) bool
	tainted  map[types.Object]bool
}

func newFlowFunc(pkg *Package, isSource func(*ast.CallExpr) bool, view func(types.Type) bool) *flowFunc {
	return &flowFunc{pkg: pkg, isSource: isSource, view: view, tainted: map[types.Object]bool{}}
}

// run iterates the body's binding statements to a fixpoint. The cap
// bounds pathological chains (a->b->c->... each iteration moves taint
// one binding forward; real functions converge in two or three).
func (fl *flowFunc) run(body *ast.BlockStmt) {
	for i := 0; i < 8; i++ {
		if !fl.pass(body) {
			return
		}
	}
}

// pass applies every taint-transfer edge once; reports whether anything
// changed.
func (fl *flowFunc) pass(body *ast.BlockStmt) bool {
	changed := false
	taint := func(obj types.Object) {
		if obj != nil && !fl.tainted[obj] {
			fl.tainted[obj] = true
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			fl.transferAssign(st.Lhs, st.Rhs, taint)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range st.Names {
				lhs = append(lhs, name)
			}
			fl.transferAssign(lhs, st.Values, taint)
		case *ast.RangeStmt:
			if fl.exprTainted(st.X) {
				if id, ok := st.Value.(*ast.Ident); ok && fl.viewExpr(id) {
					taint(fl.defOrUse(id))
				}
			}
		}
		return true
	})
	return changed
}

// transferAssign moves taint from RHS to LHS bindings. Only plain
// identifier targets bind here — stores through fields, maps, indexes,
// and derefs are escapes, judged by the analyzer's report phase, not
// taint transfers.
func (fl *flowFunc) transferAssign(lhs, rhs []ast.Expr, taint func(types.Object)) {
	// Multi-value form: x, y := call().
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok && fl.isSource(call) {
			if tup, ok := fl.pkg.Info.TypeOf(call).(*types.Tuple); ok {
				for i, l := range lhs {
					if i < tup.Len() && fl.viewType(tup.At(i).Type()) {
						if id, ok := l.(*ast.Ident); ok {
							taint(fl.defOrUse(id))
						}
					}
				}
			}
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		id, ok := l.(*ast.Ident)
		if !ok || !fl.viewExpr(id) {
			continue
		}
		if fl.exprTainted(rhs[i]) {
			taint(fl.defOrUse(id))
		}
	}
}

// exprTainted reports whether evaluating e can yield a borrowed value.
func (fl *flowFunc) exprTainted(e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return fl.tainted[fl.defOrUse(v)]
	case *ast.SelectorExpr:
		// Field read off a tainted value: the field carries the borrow
		// only if its own type can hold a reference.
		return fl.viewExpr(v) && fl.exprTainted(v.X)
	case *ast.IndexExpr:
		return fl.viewExpr(v) && fl.exprTainted(v.X)
	case *ast.SliceExpr:
		return fl.exprTainted(v.X)
	case *ast.StarExpr:
		return fl.exprTainted(v.X)
	case *ast.TypeAssertExpr:
		return fl.viewExpr(v) && fl.exprTainted(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return fl.exprTainted(v.X)
		}
		return false
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if fl.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return fl.callTainted(v)
	}
	return false
}

// callTainted classifies a call's result. Producer calls are the taint
// sources. Builtin append propagates: appending a borrowed view (or a
// slice of views) into a slice keeps the result borrowed — unless the
// appended elements are plain bytes/scalars, in which case append
// copies them and the result is owned (the canonical
// append([]byte(nil), b...) deep-copy idiom). Conversions to string
// copy and therefore own. Every other call returns owned values: if
// the callee hands out a view it must be annotated as a producer.
func (fl *flowFunc) callTainted(call *ast.CallExpr) bool {
	if fl.isSource(call) {
		// Single-result producer: the result is borrowed when its type
		// can carry a reference (tuple results bind in transferAssign).
		t := fl.pkg.Info.TypeOf(call)
		if _, ok := t.(*types.Tuple); ok {
			return false
		}
		return fl.viewType(t)
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := fl.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			return fl.appendTainted(call)
		}
	}
	if target, ok := isTypeConversion(fl.pkg.Info, call); ok {
		if isString(target.Underlying()) {
			return false // string(b) copies: owned
		}
		return fl.exprTainted(call.Args[0]) // T(view) is still the view
	}
	return false
}

func (fl *flowFunc) appendTainted(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if fl.exprTainted(call.Args[0]) {
		return true // growing a borrowed slice stays borrowed
	}
	for _, a := range call.Args[1:] {
		if !fl.exprTainted(a) {
			continue
		}
		// append copies element values: only elements that themselves
		// hold references keep the result borrowed.
		at := fl.pkg.Info.TypeOf(a)
		if call.Ellipsis != token.NoPos {
			if s, ok := at.Underlying().(*types.Slice); ok {
				at = s.Elem()
			}
		}
		if fl.viewType(at) {
			return true
		}
	}
	return false
}

func (fl *flowFunc) viewExpr(e ast.Expr) bool {
	return fl.viewType(fl.pkg.Info.TypeOf(e))
}

func (fl *flowFunc) viewType(t types.Type) bool {
	if t == nil {
		return false
	}
	return fl.view(t)
}

func (fl *flowFunc) defOrUse(id *ast.Ident) types.Object {
	if obj := fl.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return fl.pkg.Info.Uses[id]
}

// capturedTainted reports the first identifier inside the func literal
// that references a tainted variable declared outside it — a closure
// capture of a borrowed value.
func (fl *flowFunc) capturedTainted(lit *ast.FuncLit) (*ast.Ident, bool) {
	var found *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fl.pkg.Info.Uses[id]
		if obj == nil || !fl.tainted[obj] {
			return true
		}
		if declaredWithin(obj, lit) {
			return true
		}
		found = id
		return false
	})
	return found, found != nil
}

// declaredWithin reports whether obj's declaration lies inside the
// given node's source range — i.e. it is the closure's own local, not a
// capture.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- escape-sink classification (shared with lifecycle) ---

// heapBase reports whether a store through base lands in heap-reachable
// storage from the enclosing function's point of view: anything behind
// a pointer, a package-level variable, a map or slice element, or the
// result of a call. A chain rooted at a plain local value variable is
// stack-local — a store there propagates taint instead of escaping.
func heapBase(info *types.Info, e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(v)
		if obj == nil {
			return true // unknown: be conservative
		}
		if vr, ok := obj.(*types.Var); ok {
			if vr.Parent() == nil || vr.Parent().Parent() == types.Universe {
				return true // package-level var
			}
			if _, isPtr := vr.Type().Underlying().(*types.Pointer); isPtr {
				return true // local pointer: the pointee is heap-reachable
			}
			return false
		}
		return true
	case *ast.SelectorExpr:
		if t := info.TypeOf(v.X); t != nil {
			if _, ok := t.Underlying().(*types.Pointer); ok {
				return true
			}
		}
		return heapBase(info, v.X)
	case *ast.IndexExpr:
		if t := info.TypeOf(v.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				return true
			}
		}
		return heapBase(info, v.X)
	case *ast.StarExpr, *ast.CallExpr:
		return true
	}
	return true
}

// localVarObj resolves e to a function-local (non-package-level)
// variable's object, or nil.
func localVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	vr, ok := info.ObjectOf(id).(*types.Var)
	if !ok || vr.Parent() == nil || vr.Parent().Parent() == types.Universe {
		return nil
	}
	return vr
}

// --- line directives (//atomlint:owned, //atomlint:scratch) ---

// lineDirective is one parsed ownership declaration: owned marks an
// explicit copy/ownership-transfer point (the stored value's lifetime
// is pinned by a container the spec names), scratch declares a
// heap-reachable slot as per-window scratch storage a producer may
// write through. Both require a reason; both cover their own line and
// the line below, exactly like //atomlint:ignore.
type lineDirective struct {
	file string
	line int
	kind string // "owned" or "scratch"
}

// collectLineDirectives parses owned/scratch declarations in the
// package, reporting malformed ones (missing reason) through report.
func collectLineDirectives(pkg *Package, report func(pos token.Pos, format string, args ...any)) []lineDirective {
	var out []lineDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, kind := range []string{"owned", "scratch"} {
					rest, ok := strings.CutPrefix(c.Text, "//atomlint:"+kind)
					if !ok {
						continue
					}
					if strings.TrimSpace(rest) == "" {
						report(c.Pos(), "malformed atomlint:%s directive: a reason is mandatory — want \"//atomlint:%s <why the lifetime is safe>\"", kind, kind)
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, lineDirective{file: pos.Filename, line: pos.Line, kind: kind})
				}
			}
		}
	}
	return out
}

// declaredAt reports whether a directive of the given kind covers the
// position (its own line or the line below the directive).
func declaredAt(dirs []lineDirective, kind string, pos token.Position) bool {
	for _, d := range dirs {
		if d.kind == kind && d.file == pos.Filename && (d.line == pos.Line || d.line == pos.Line-1) {
			return true
		}
	}
	return false
}
