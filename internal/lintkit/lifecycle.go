package lintkit

// The lifecycle analyzer enforces goroutine and resource discipline in
// the long-running packages — the observability layer, the CLI
// lifecycle, the worker pool, the streaming decoder, and the future
// atomd daemon. A daemon that leaks a goroutine, a ticker, or an
// undrained channel fails slowly and unreproducibly; these checks make
// the teardown story mechanical:
//
//   - every `go` statement must have a provable join/cancel path: the
//     spawned closure (or same-package callee body) signals completion
//     (WaitGroup.Done, close(ch)) or watches a cancel signal (a channel
//     receive); launching an opaque external callee is a finding
//   - time.Ticker/time.Timer must be Stopped — locals in-function,
//     fields by some method of the owning type; time.Tick and
//     time.After-in-a-loop leak by construction
//   - sync.WaitGroup: Add inside the spawned goroutine races the Wait;
//     a local WaitGroup with Add but no Wait never joins
//   - a channel that is made, sent to, and neither received from,
//     closed, nor handed off is a parked-sender leak
//   - a closable value (Close/Stop/Shutdown in its method set) stored
//     into a struct field must be torn down by some method of that
//     type, so every constructor's teardown path reaches it

import (
	"go/ast"
	"go/types"
	"strings"
)

// lifecyclePkgs scopes the sweep to the packages that own goroutines,
// timers, or OS resources today, plus the daemon package names atomd
// will use (and the fixture package lifefix).
var lifecyclePkgs = []string{"obs", "cli", "parallel", "bgpstream", "replay", "atomd", "daemon", "lifefix"}

// teardownNames are the method names recognized as teardown on both
// sides: a field whose type offers one is closable, and a method of the
// owning type calling one on the field wires it up.
var teardownNames = []string{"Close", "Stop", "Shutdown", "Finish"}

var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc:  "flag goroutines without join/cancel paths, unStopped tickers, undrained channels, and closable fields with no teardown",
	Run:  runLifecycle,
}

func runLifecycle(pass *Pass) {
	if !hasSuffixPath(pass.Pkg.Path, lifecyclePkgs, "internal") {
		return
	}
	lc := &lifecycleCtx{pass: pass, funcBodies: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lc.decls = append(lc.decls, fd)
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					lc.funcBodies[fn] = fd
				}
			}
		}
	}
	lc.collectFieldTeardowns()
	for _, fd := range lc.decls {
		lc.checkFunc(fd)
	}
	lc.checkFieldTeardowns()
}

type lifecycleCtx struct {
	pass       *Pass
	decls      []*ast.FuncDecl // source order, for deterministic sweeps
	funcBodies map[*types.Func]*ast.FuncDecl

	// field-teardown bookkeeping, package-wide: stores[T][field] is the
	// position of a closable value stored into T.field; teardowns[T][field]
	// records that some method of T calls a teardown on the field.
	stores    map[string]map[string]ast.Node
	teardowns map[string]map[string]bool
	tickers   map[string]map[string]ast.Node // fields holding *time.Ticker / *time.Timer
}

// --- per-function checks ---

func (lc *lifecycleCtx) checkFunc(fd *ast.FuncDecl) {
	info := lc.pass.Pkg.Info
	hasAdd := containsWaitGroupCall(info, fd.Body, "Add")

	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			lc.checkGo(st, parents, hasAdd)
		case *ast.CallExpr:
			lc.checkTimeCall(st, parents)
		case *ast.AssignStmt:
			lc.checkLocalResources(fd, st)
		}
		return true
	})
	lc.checkLocalWaitGroups(fd)
}

// checkGo demands a join/cancel path for every spawned goroutine.
func (lc *lifecycleCtx) checkGo(st *ast.GoStmt, parents []ast.Node, fnHasAdd bool) {
	info := lc.pass.Pkg.Info
	if inLoop(parents) && !fnHasAdd {
		lc.pass.Reportf(st.Pos(), "goroutine launched in a loop with no WaitGroup.Add in the function: unbounded fan-out with no join")
	}
	switch fun := unparen(st.Call.Fun).(type) {
	case *ast.FuncLit:
		if !joinsOrCancels(info, fun.Body) {
			lc.pass.Reportf(st.Pos(), "goroutine closure has no join or cancel path (no WaitGroup.Done, close, or channel receive): it can outlive its owner")
		}
		// Add inside the spawned goroutine races the owner's Wait.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // nested spawn judged at its own go statement
			}
			if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(info, call, "Add") {
				lc.pass.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait: Add before the go statement")
			}
			return true
		})
	default:
		fn := calleeFunc(info, st.Call)
		if fn != nil {
			if body, ok := lc.funcBodies[fn]; ok {
				if !joinsOrCancels(info, body.Body) {
					lc.pass.Reportf(st.Pos(), "goroutine runs %s, which has no join or cancel path (no WaitGroup.Done, close, or channel receive)", fn.Name())
				}
				return
			}
		}
		lc.pass.Reportf(st.Pos(), "goroutine runs an opaque callee: wrap it in a closure that signals completion (close a done channel or WaitGroup.Done) so teardown can join it")
	}
}

// joinsOrCancels reports whether a body signals completion or watches a
// cancel signal: WaitGroup.Done, close(ch), any channel receive
// (<-done, <-ctx.Done(), select cases), or ranging over a channel.
func joinsOrCancels(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupCall(info, v, "Done") || isBuiltinCall(info, v, "close") {
				found = true
			}
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkTimeCall flags the time APIs that leak by construction.
func (lc *lifecycleCtx) checkTimeCall(call *ast.CallExpr, parents []ast.Node) {
	info := lc.pass.Pkg.Info
	if pkgFunc(info, call, "time", "Tick") {
		lc.pass.Reportf(call.Pos(), "time.Tick leaks its ticker: use time.NewTicker and Stop it on teardown")
		return
	}
	if pkgFunc(info, call, "time", "After") && inLoop(parents) {
		lc.pass.Reportf(call.Pos(), "time.After in a loop allocates a timer per iteration that only the GC reclaims: hoist a time.NewTimer (or Ticker) and Stop it")
	}
}

// checkLocalResources handles x := time.NewTicker(...) / NewTimer and
// constructor-style closables bound to locals: each must be Stopped /
// Closed in-function or escape to an owner that can. Stores into struct
// fields are recorded for the package-wide teardown check instead.
func (lc *lifecycleCtx) checkLocalResources(fd *ast.FuncDecl, st *ast.AssignStmt) {
	info := lc.pass.Pkg.Info
	for i, lhs := range st.Lhs {
		// Field targets: any closable RHS value counts as a store the
		// owning type must eventually tear down.
		if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
			lc.recordFieldStore(sel, assignedType(info, st, i))
			continue
		}
		rhs := rhsExprAt(st, i)
		if rhs == nil {
			continue
		}
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		obj := localVarObj(info, lhs)
		if obj == nil {
			continue
		}
		switch {
		case pkgFunc(info, call, "time", "NewTicker"):
			if !stoppedOrEscapes(info, fd.Body, obj) {
				lc.pass.Reportf(st.Pos(), "time.Ticker %s is never Stopped: its goroutine and channel leak; defer %s.Stop()", obj.Name(), obj.Name())
			}
		case pkgFunc(info, call, "time", "NewTimer"):
			if !stoppedOrEscapes(info, fd.Body, obj) {
				lc.pass.Reportf(st.Pos(), "time.Timer %s is never Stopped: Stop it on every teardown path", obj.Name())
			}
		case isConstructorCall(info, call) && hasTeardown(obj.Type()):
			if !stoppedOrEscapes(info, fd.Body, obj) {
				lc.pass.Reportf(st.Pos(), "%s holds a closable %s that is never closed and never handed off: wire it to a teardown path", obj.Name(), obj.Type().String())
			}
		}
	}
}

// rhsExprAt returns the RHS expression feeding Lhs[i]: pairwise for
// n:=n assignments, Rhs[0] for the x, err := f() tuple form.
func rhsExprAt(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Rhs) == len(st.Lhs) {
		return st.Rhs[i]
	}
	if len(st.Rhs) == 1 {
		return st.Rhs[0]
	}
	return nil
}

// assignedType resolves the type flowing into Lhs[i], unpacking the
// tuple of a multi-value call on the RHS.
func assignedType(info *types.Info, st *ast.AssignStmt, i int) types.Type {
	rhs := rhsExprAt(st, i)
	if rhs == nil {
		return nil
	}
	t := info.TypeOf(rhs)
	if tup, ok := t.(*types.Tuple); ok {
		if i < tup.Len() {
			return tup.At(i).Type()
		}
		return nil
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		return nil
	}
	return t
}

// isConstructorCall recognizes the constructor naming idiom: New*,
// Open*, Listen*, Dial*, Create*, Start* — the calls whose results the
// caller owns and must eventually tear down.
func isConstructorCall(info *types.Info, call *ast.CallExpr) bool {
	name := calleeName(call.Fun)
	for _, p := range []string{"New", "Open", "Listen", "Dial", "Create", "Start"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// stoppedOrEscapes reports whether the local resource obj has a
// teardown call in this function (including defers and closures), or
// escapes to an owner — returned, passed to a call, or stored anywhere.
func stoppedOrEscapes(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	ok := false
	walkParents(body, func(n ast.Node, parents []ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || info.Uses[id] != obj || len(parents) == 0 {
			return true
		}
		switch p := parents[len(parents)-1].(type) {
		case *ast.SelectorExpr:
			for _, name := range teardownNames {
				if p.Sel.Name == name {
					ok = true // x.Stop / x.Close reference (called or deferred)
				}
			}
		case *ast.CallExpr:
			for _, a := range p.Args {
				if a == ast.Expr(id) {
					ok = true // handed off
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			ok = true // escapes to an owner
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == ast.Expr(id) {
					ok = true // reassigned away: the new binding owns it
				}
			}
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				ok = true
			}
		}
		return true
	})
	return ok
}

// checkLocalWaitGroups flags a function-local WaitGroup with Add but no
// Wait — goroutines counted in, never joined. A WaitGroup whose address
// escapes is someone else's to Wait on.
func (lc *lifecycleCtx) checkLocalWaitGroups(fd *ast.FuncDecl) {
	info := lc.pass.Pkg.Info
	type wgState struct {
		addPos ast.Node
		waited bool
		escapes bool
	}
	wgs := map[types.Object]*wgState{}
	state := func(obj types.Object) *wgState {
		if !isWaitGroupType(obj.Type()) || !declaredWithin(obj, fd) {
			return nil
		}
		s := wgs[obj]
		if s == nil {
			s = &wgState{}
			wgs[obj] = s
		}
		return s
	}
	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok {
				if obj := localVarObj(info, sel.X); obj != nil {
					if s := state(obj); s != nil {
						switch sel.Sel.Name {
						case "Add":
							if s.addPos == nil {
								s.addPos = v
							}
						case "Wait":
							s.waited = true
						}
					}
				}
			}
			// &wg passed along: ownership leaves the function.
			for _, a := range v.Args {
				if u, ok := unparen(a).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
					if obj := localVarObj(info, u.X); obj != nil {
						if s := state(obj); s != nil {
							s.escapes = true
						}
					}
				}
			}
		}
		return true
	})
	for obj, s := range wgs {
		if s.addPos != nil && !s.waited && !s.escapes {
			lc.pass.Reportf(s.addPos.Pos(), "WaitGroup %s has Add but no Wait in this function: the counted goroutines are never joined", obj.Name())
		}
	}
	lc.checkLocalChannels(fd)
}

// checkLocalChannels flags the parked-sender leak: a channel made
// locally, sent to (often from a goroutine), and never received from,
// closed, or handed off — every sender blocks forever.
func (lc *lifecycleCtx) checkLocalChannels(fd *ast.FuncDecl) {
	info := lc.pass.Pkg.Info
	type chState struct {
		makePos  ast.Node
		sent     bool
		drained  bool // received, closed, or escaped
	}
	chans := map[types.Object]*chState{}

	// Pass 1: find ch := make(chan ...) locals.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			call, ok := unparen(st.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltinCall(info, call, "make") || len(call.Args) == 0 {
				continue
			}
			if t := info.TypeOf(call); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := localVarObj(info, lhs); obj != nil {
						chans[obj] = &chState{makePos: st}
					}
				}
			}
		}
		return true
	})
	if len(chans) == 0 {
		return
	}
	// Pass 2: classify every use.
	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || len(parents) == 0 {
			return true
		}
		obj := info.Uses[id]
		s := chans[obj]
		if s == nil {
			return true
		}
		switch p := parents[len(parents)-1].(type) {
		case *ast.SendStmt:
			if p.Chan == ast.Expr(id) {
				s.sent = true
			} else {
				s.drained = true // the channel itself sent elsewhere: handed off
			}
		case *ast.UnaryExpr:
			if p.Op.String() == "<-" || p.Op.String() == "&" {
				s.drained = true
			}
		case *ast.RangeStmt:
			if p.X == ast.Expr(id) {
				s.drained = true
			}
		case *ast.CallExpr:
			if isBuiltinCall(info, p, "close") {
				s.drained = true
			}
			for _, a := range p.Args {
				if a == ast.Expr(id) && !isBuiltinCall(info, p, "len") && !isBuiltinCall(info, p, "cap") {
					s.drained = true // handed off (incl. close)
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			s.drained = true
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == ast.Expr(id) {
					s.drained = true
				}
			}
			for _, l := range p.Lhs {
				if l == ast.Expr(id) && localVarObj(info, l) == nil {
					s.drained = true // stored into a field: owner's job
				}
			}
		}
		return true
	})
	for obj, s := range chans {
		if s.sent && !s.drained {
			lc.pass.Reportf(s.makePos.Pos(), "channel %s is sent to but never received from, closed, or handed off: senders park forever", obj.Name())
		}
	}
}

// --- package-wide field teardown ---

// collectFieldTeardowns scans every method in the package for teardown
// calls on receiver fields (recv.field.Close() and friends) and every
// function for closable values stored into struct fields.
func (lc *lifecycleCtx) collectFieldTeardowns() {
	lc.stores = map[string]map[string]ast.Node{}
	lc.teardowns = map[string]map[string]bool{}
	lc.tickers = map[string]map[string]ast.Node{}
	info := lc.pass.Pkg.Info
	for _, fd := range lc.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				// recv.field.Close() — a teardown wired to the type.
				sel, ok := unparen(v.Fun).(*ast.SelectorExpr)
				if !ok || !isTeardownName(sel.Sel.Name) {
					return true
				}
				inner, ok := unparen(sel.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if tn := namedTypeOf(info, inner.X); tn != "" {
					mark(lc.teardowns, tn, inner.Sel.Name)
				}
			case *ast.CompositeLit:
				// T{field: closable} in a constructor counts as a store.
				tn := namedTypeName(info.TypeOf(v))
				if tn == "" {
					return true
				}
				for _, el := range v.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					lc.recordTypedStore(tn, key.Name, kv, info.TypeOf(kv.Value))
				}
			}
			return true
		})
	}
}

// recordFieldStore notes s.field = <closable> stores for the
// package-wide teardown check.
func (lc *lifecycleCtx) recordFieldStore(sel *ast.SelectorExpr, vt types.Type) {
	tn := namedTypeOf(lc.pass.Pkg.Info, sel.X)
	if tn == "" {
		return
	}
	lc.recordTypedStore(tn, sel.Sel.Name, sel, vt)
}

func (lc *lifecycleCtx) recordTypedStore(typeName, field string, at ast.Node, vt types.Type) {
	if vt == nil {
		return
	}
	switch {
	case isTimeResource(vt):
		if lc.tickers[typeName] == nil {
			lc.tickers[typeName] = map[string]ast.Node{}
		}
		if _, seen := lc.tickers[typeName][field]; !seen {
			lc.tickers[typeName][field] = at
		}
	case hasTeardown(vt):
		if lc.stores[typeName] == nil {
			lc.stores[typeName] = map[string]ast.Node{}
		}
		if _, seen := lc.stores[typeName][field]; !seen {
			lc.stores[typeName][field] = at
		}
	}
}

// checkFieldTeardowns reports closable/ticker fields no method of the
// owning type ever tears down.
func (lc *lifecycleCtx) checkFieldTeardowns() {
	for tn, fields := range lc.tickers {
		for field, at := range fields {
			if !lc.teardowns[tn][field] {
				lc.pass.Reportf(at.Pos(), "%s.%s holds a time.Ticker/Timer but no method of %s ever Stops it: wire it into the teardown path", tn, field, tn)
			}
		}
	}
	for tn, fields := range lc.stores {
		for field, at := range fields {
			if !lc.teardowns[tn][field] {
				lc.pass.Reportf(at.Pos(), "%s.%s stores a closable value but no method of %s ever closes it: every constructor needs a teardown path to this field", tn, field, tn)
			}
		}
	}
}

// --- small type helpers ---

func isTeardownName(name string) bool {
	for _, n := range teardownNames {
		if n == name {
			return true
		}
	}
	return false
}

// namedTypeOf resolves an expression (usually a method receiver
// identifier) to the bare name of its named struct type, "" otherwise.
func namedTypeOf(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(unparen(e))
	return namedTypeName(t)
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// hasTeardown reports whether t (or *t) offers a teardown method.
func hasTeardown(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, name := range teardownNames {
		if name == "Finish" {
			continue // Finish is a wiring name, not a capability marker
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// isTimeResource reports *time.Ticker / *time.Timer.
func isTimeResource(t types.Type) bool {
	t = types.Unalias(t)
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "time" {
		return false
	}
	return n.Obj().Name() == "Ticker" || n.Obj().Name() == "Timer"
}

func isWaitGroupType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// isWaitGroupCall reports x.<name>() where x is a sync.WaitGroup.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isWaitGroupType(t)
}

func containsWaitGroupCall(info *types.Info, body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(info, call, name) {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// inLoop reports whether the ancestor stack crosses a for/range
// statement (within the function being walked).
func inLoop(parents []ast.Node) bool {
	for _, p := range parents {
		switch p.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

func mark(m map[string]map[string]bool, key, field string) {
	if m[key] == nil {
		m[key] = map[string]bool{}
	}
	m[key][field] = true
}
