package lintkit

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// The fixtures under testdata/src mark each expected finding with a
// trailing `// want "substring"` comment on the diagnostic's line. The
// harness demands an exact match both ways: every diagnostic must hit
// an unclaimed want, and every want must be claimed — so a disabled or
// regressed analyzer fails the test with the exact missing line.

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

type wantDiag struct {
	file    string
	line    int
	substr  string
	matched bool
}

var (
	fixtureMu    sync.Mutex
	fixtureCache = map[string]*Package{}
)

// loadFixtureT loads testdata/src/<dir> type-checked under the given
// (synthetic) import path, memoized — the GOROOT source importer makes
// each cold load cost real time.
func loadFixtureT(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	key := dir + "|" + importPath
	if p, ok := fixtureCache[key]; ok {
		return p
	}
	pkg, err := LoadFixture(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("load fixture %s as %s: %v", dir, importPath, err)
	}
	fixtureCache[key] = pkg
	return pkg
}

func collectWants(pkg *Package) []*wantDiag {
	var wants []*wantDiag
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &wantDiag{file: pos.Filename, line: pos.Line, substr: m[1]})
				}
			}
		}
	}
	return wants
}

func checkFixture(t *testing.T, dir, importPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixtureT(t, dir, importPath)
	wants := collectWants(pkg)
	diags := RunAnalyzers([]*Package{pkg}, analyzers)
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// The fixtures run under the full suite: the scoped analyzers must not
// bleed into each other's fixtures, and the target analyzer must produce
// exactly the marked findings.

// The determinism fixture loads as internal/metrics: a deterministic-
// scope package with no requiredHotpaths entry, so the hotpath sweep's
// per-package kernel table (which now pins internal/core's AtomIndex
// kernels) cannot bleed findings into this fixture.
func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", "repro/internal/metrics", All)
}

func TestHotpathFixture(t *testing.T) {
	checkFixture(t, "hotpath", "repro/internal/hotfix", All)
}

func TestHotpathRequiredFixture(t *testing.T) {
	checkFixture(t, "hotreq", "repro/internal/bgpstream", All)
}

// TestHotpathRequiredScope pins the required-kernel sweep's package
// matching: the same fixture under an unlisted path is silent — the
// table binds names to specific packages, not the whole tree.
func TestHotpathRequiredScope(t *testing.T) {
	pkg := loadFixtureT(t, "hotreq", "repro/internal/textplot")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Hotpath}); len(diags) != 0 {
		t.Errorf("hotreq fixture under internal/textplot: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
}

// The wiresafety fixture loads as internal/bgp (also in the wire
// scope): under internal/mrt the hotpath analyzer's required-kernel
// table would demand (*BytesReader).Next.
func TestWireSafetyFixture(t *testing.T) {
	checkFixture(t, "wiresafety", "repro/internal/bgp", All)
}

func TestLocksFixture(t *testing.T) {
	checkFixture(t, "locks", "repro/internal/lockfix", All)
}

func TestAliasingFixture(t *testing.T) {
	checkFixture(t, "aliasing", "repro/internal/aliasfix", All)
}

// The required-producer fixture loads as internal/bgp — a package the
// requiredBorrowed table pins — with one registered producer present but
// unannotated and one absent entirely.
func TestAliasingRequiredFixture(t *testing.T) {
	checkFixture(t, "borrowedreq", "repro/internal/bgp", All)
}

func TestLifecycleFixture(t *testing.T) {
	checkFixture(t, "lifecycle", "repro/internal/lifefix", All)
}

// TestAliasingDirectives pins the owned/scratch directive grammar and
// the one-directive-many-findings ignore contract. Checked without want
// markers: a malformed directive's finding lands on the directive's own
// comment line, which cannot carry a marker comment too.
func TestAliasingDirectives(t *testing.T) {
	pkg := loadFixtureT(t, "aliasdir", "repro/internal/aliasfix")
	diags := RunAnalyzers([]*Package{pkg}, All)

	var malformed, escapes int
	for _, d := range diags {
		if d.Analyzer != "aliasing" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "malformed atomlint:"):
			malformed++
		case strings.Contains(d.Message, "heap-reachable"):
			escapes++
		default:
			t.Errorf("unexpected aliasing diagnostic: %s", d)
		}
		// The ignored() line held a field store and a package-var store;
		// one //atomlint:ignore aliasing must have silenced both.
		if strings.Contains(d.Message, "package variable") {
			t.Errorf("ignore directive failed to suppress: %s", d)
		}
	}
	if malformed != 2 {
		t.Errorf("malformed-directive diagnostics = %d, want 2 (bare owned + bare scratch): %v", malformed, diags)
	}
	// Malformed directives register nothing, so the escapes they sat
	// above must still be reported.
	if escapes != 2 {
		t.Errorf("surviving escape diagnostics = %d, want 2: %v", escapes, diags)
	}

	// Inversion: with aliasing disabled the fixture is silent.
	var rest []*Analyzer
	for _, a := range All {
		if a != Aliasing {
			rest = append(rest, a)
		}
	}
	if diags := RunAnalyzers([]*Package{pkg}, rest); len(diags) != 0 {
		t.Errorf("aliasdir fixture with aliasing disabled: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
}

func TestClockSeamFixture(t *testing.T) {
	checkFixture(t, "clockseam", "repro/internal/obs", All)
}

// TestClockSeamScope pins the sweep's package allowlist: the same
// violation-riddled fixture under internal/cli is swept, under an
// unscoped path it is silent.
func TestClockSeamScope(t *testing.T) {
	pkg := loadFixtureT(t, "clockseam", "repro/internal/cli")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) == 0 {
		t.Error("clockseam fixture under internal/cli: no diagnostics, want findings")
	} else {
		// The exemption key is "obs.clockNow", so under internal/cli even
		// the seam declaration itself is a finding.
		want := 7
		if len(diags) != want {
			t.Errorf("clockseam fixture under internal/cli: %d diagnostic(s), want %d", len(diags), want)
		}
	}
	pkg = loadFixtureT(t, "clockseam", "repro/internal/textplot")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("clockseam fixture under internal/textplot: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
}

// TestFixtureSilentWithAnalyzerDisabled is the golden inversion: running
// a fixture with its analyzer removed must produce zero diagnostics —
// proving every marked finding is attributable to that one check (and
// that the fixture test above genuinely fails if the check is disabled).
func TestFixtureSilentWithAnalyzerDisabled(t *testing.T) {
	cases := []struct {
		dir, path string
		disabled  *Analyzer
	}{
		{"determinism", "repro/internal/metrics", Determinism},
		{"clockseam", "repro/internal/obs", Determinism},
		{"hotpath", "repro/internal/hotfix", Hotpath},
		{"hotreq", "repro/internal/bgpstream", Hotpath},
		{"wiresafety", "repro/internal/bgp", WireSafety},
		{"locks", "repro/internal/lockfix", Locks},
		{"aliasing", "repro/internal/aliasfix", Aliasing},
		{"borrowedreq", "repro/internal/bgp", Aliasing},
		{"lifecycle", "repro/internal/lifefix", Lifecycle},
	}
	for _, tc := range cases {
		var rest []*Analyzer
		for _, a := range All {
			if a != tc.disabled {
				rest = append(rest, a)
			}
		}
		pkg := loadFixtureT(t, tc.dir, tc.path)
		if diags := RunAnalyzers([]*Package{pkg}, rest); len(diags) != 0 {
			t.Errorf("%s fixture with %s disabled: %d diagnostic(s), want 0 (first: %s)",
				tc.dir, tc.disabled.Name, len(diags), diags[0])
		}
	}
}

// TestScopedAnalyzersRespectPackagePaths loads the violation-riddled
// fixture sources under paths outside the analyzer's scope: the
// allowlist must silence everything. (internal/obs is no longer a
// silent path for determinism — the clock-seam sweep covers it — so
// the determinism fixture relocates to internal/textplot.)
func TestScopedAnalyzersRespectPackagePaths(t *testing.T) {
	pkg := loadFixtureT(t, "determinism", "repro/internal/textplot")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("determinism fixture under internal/textplot: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
	pkg = loadFixtureT(t, "wiresafety", "repro/internal/obs")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{WireSafety}); len(diags) != 0 {
		t.Errorf("wiresafety fixture under internal/obs: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
	pkg = loadFixtureT(t, "aliasing", "repro/internal/textplot")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Aliasing}); len(diags) != 0 {
		t.Errorf("aliasing fixture under internal/textplot: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
	pkg = loadFixtureT(t, "lifecycle", "repro/internal/textplot")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Lifecycle}); len(diags) != 0 {
		t.Errorf("lifecycle fixture under internal/textplot: %d diagnostic(s), want 0 (first: %s)", len(diags), diags[0])
	}
}

// TestIgnoreSuppression pins down //atomlint:ignore semantics: a valid
// directive silences its analyzer on its own line and the line below,
// a directive for another analyzer suppresses nothing, and malformed or
// unknown-analyzer directives are themselves findings.
func TestIgnoreSuppression(t *testing.T) {
	pkg := loadFixtureT(t, "ignore", "repro/internal/core")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism})

	var det, kit []Diag
	for _, d := range diags {
		switch d.Analyzer {
		case "determinism":
			det = append(det, d)
		case "lintkit":
			kit = append(kit, d)
		default:
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	// Six time.Now calls; the two properly-suppressed ones must vanish,
	// the other four (unsuppressed, wrong analyzer, malformed directive,
	// unknown analyzer) must survive.
	if len(det) != 4 {
		t.Errorf("determinism diagnostics = %d, want 4: %v", len(det), det)
	}
	if len(kit) != 2 {
		t.Fatalf("lintkit directive diagnostics = %d, want 2: %v", len(kit), kit)
	}
	if !strings.Contains(kit[0].Message, "malformed atomlint:ignore") {
		t.Errorf("first directive diagnostic = %q, want malformed-directive finding", kit[0].Message)
	}
	if !strings.Contains(kit[1].Message, "unknown analyzer") {
		t.Errorf("second directive diagnostic = %q, want unknown-analyzer finding", kit[1].Message)
	}
}

// writeTree writes a map of relative path → contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

const fixtureGoMod = "module fixturemod\n\ngo 1.22\n"

func TestMainExitCleanModule(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": fixtureGoMod,
		"ok.go":  "package cleanmod\n\n// OK is fine.\nfunc OK() int { return 1 }\n",
	})
	var out bytes.Buffer
	if got := Main(&out, dir, nil, All); got != ExitClean {
		t.Fatalf("Main = %d, want %d; output:\n%s", got, ExitClean, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

func TestMainExitFindings(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":                fixtureGoMod,
		"internal/core/core.go": "package core\n\nimport \"time\"\n\n// Stamp is nondeterministic on purpose.\nfunc Stamp() int64 { return time.Now().Unix() }\n",
	})
	var out bytes.Buffer
	if got := Main(&out, dir, nil, All); got != ExitFindings {
		t.Fatalf("Main = %d, want %d; output:\n%s", got, ExitFindings, out.String())
	}
	if s := out.String(); !strings.Contains(s, "time.Now") || !strings.Contains(s, "finding(s)") {
		t.Errorf("findings output missing diagnostic or summary:\n%s", s)
	}

	// Pattern filtering: naming the offending package still finds it,
	// a disjoint pattern filters everything out and exits clean.
	out.Reset()
	if got := Main(&out, dir, []string{"./internal/core"}, All); got != ExitFindings {
		t.Errorf("Main(./internal/core) = %d, want %d", got, ExitFindings)
	}
	out.Reset()
	if got := Main(&out, dir, []string{"./internal/other/..."}, All); got != ExitClean {
		t.Errorf("Main(./internal/other/...) = %d, want %d; output:\n%s", got, ExitClean, out.String())
	}
}

// findingsTree is a small module with deterministic findings spread
// over three scoped packages — enough tasks to exercise the grid merge.
// The package names sit in the determinism scope but outside the
// hotpath/aliasing required tables, so the count is exact.
func findingsTree(t *testing.T) string {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod":                        fixtureGoMod,
		"internal/routing/routing.go":   "package routing\n\nimport \"time\"\n\n// Stamp is nondeterministic on purpose.\nfunc Stamp() int64 { return time.Now().Unix() }\n",
		"internal/sanitize/sanitize.go": "package sanitize\n\nimport \"time\"\n\n// When is nondeterministic on purpose.\nfunc When() int64 { return time.Now().UnixNano() }\n",
		"internal/metrics/metrics.go":   "package metrics\n\nimport \"time\"\n\n// Tick is nondeterministic on purpose.\nfunc Tick() int64 { return time.Now().UnixMilli() }\n",
	})
	return dir
}

// TestMainOptsWorkersDeterministic pins the grid driver's core
// guarantee: findings output is byte-identical at any worker count.
func TestMainOptsWorkersDeterministic(t *testing.T) {
	parallel.ForceParallel(true)
	defer parallel.ForceParallel(false)
	dir := findingsTree(t)

	var seq, par, timings bytes.Buffer
	if got := MainOpts(&seq, dir, nil, All, Options{Workers: 1}); got != ExitFindings {
		t.Fatalf("MainOpts(workers=1) = %d, want %d; output:\n%s", got, ExitFindings, seq.String())
	}
	if got := MainOpts(&par, dir, nil, All, Options{Workers: 8, Timings: &timings}); got != ExitFindings {
		t.Fatalf("MainOpts(workers=8) = %d, want %d; output:\n%s", got, ExitFindings, par.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("workers=1 and workers=8 output differ:\n--- 1:\n%s--- 8:\n%s", seq.String(), par.String())
	}
	// One wall-time line per analyzer, on the timings writer only.
	lines := strings.Count(timings.String(), "\n")
	if lines != len(All) {
		t.Errorf("timings lines = %d, want %d:\n%s", lines, len(All), timings.String())
	}
	for _, a := range All {
		if !strings.Contains(timings.String(), a.Name) {
			t.Errorf("timings output missing analyzer %s:\n%s", a.Name, timings.String())
		}
	}
}

// TestMainOptsJSON pins the -json contract: a JSON array of findings
// with stable fields, an empty array on a clean tree, and exit codes
// unchanged.
func TestMainOptsJSON(t *testing.T) {
	dir := findingsTree(t)
	var out bytes.Buffer
	if got := MainOpts(&out, dir, nil, All, Options{Workers: 1, JSON: true}); got != ExitFindings {
		t.Fatalf("MainOpts(json) = %d, want %d; output:\n%s", got, ExitFindings, out.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) != 3 {
		t.Fatalf("json findings = %d, want 3: %s", len(findings), out.String())
	}
	for _, f := range findings {
		if f.Analyzer != "determinism" || f.File == "" || f.Line == 0 || !strings.Contains(f.Message, "time.") {
			t.Errorf("unexpected json finding: %+v", f)
		}
	}

	// Clean tree: an empty array, not empty output.
	clean := t.TempDir()
	writeTree(t, clean, map[string]string{
		"go.mod": fixtureGoMod,
		"ok.go":  "package cleanmod\n\n// OK is fine.\nfunc OK() int { return 1 }\n",
	})
	out.Reset()
	if got := MainOpts(&out, clean, nil, All, Options{Workers: 1, JSON: true}); got != ExitClean {
		t.Fatalf("MainOpts(json, clean) = %d, want %d", got, ExitClean)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean json output = %q, want []", out.String())
	}
}

func TestMainExitLoadError(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": fixtureGoMod,
		"bad.go": "package broken\n\nfunc (\n",
	})
	var out bytes.Buffer
	if got := Main(&out, dir, nil, All); got != ExitError {
		t.Fatalf("Main = %d, want %d; output:\n%s", got, ExitError, out.String())
	}
	if !strings.Contains(out.String(), "atomlint:") {
		t.Errorf("load-error output missing atomlint prefix:\n%s", out.String())
	}

	// A directory that is not a module at all is also a load error.
	out.Reset()
	if got := Main(&out, t.TempDir(), nil, All); got != ExitError {
		t.Errorf("Main on non-module dir = %d, want %d", got, ExitError)
	}
}
