package lintkit

// The aliasing analyzer mechanizes the DESIGN "Zero-copy ownership"
// section: values produced by annotated zero-copy producers (record
// bodies aliasing the archive backing array, arena-backed rows,
// interned path sequences, cache-shared attributes) are *borrowed* —
// valid only inside a declared ownership window — and the analyzer
// flags every way a borrowed value can outlive that window: a store
// into heap-reachable storage (struct field behind a pointer, package
// variable, map, slice element), a channel send, a goroutine capture or
// argument, or a return from a function that is not itself a producer.
//
// The annotation grammar (normative in DESIGN.md):
//
//	//atomlint:borrowed [note]   on a producer func or interface method
//	//atomlint:owned <reason>    line directive: explicit ownership
//	                             transfer / copy point
//	//atomlint:scratch <reason>  line directive: a heap slot declared as
//	                             per-window scratch a producer may write
//
// owned and scratch require a reason; a bare directive is a finding.

import (
	"go/ast"
	"go/types"
	"strings"
)

// aliasingPkgs scopes the sweep to the zero-copy pipeline (and the
// fixture package aliasfix). Packages outside the list may still
// *define* producers via requiredBorrowed, but their function bodies
// are not swept.
var aliasingPkgs = []string{"mrt", "bgp", "bgpstream", "sanitize", "core", "replay", "aspath", "atomd", "aliasfix"}

// requiredBorrowed pins, per package (matched by import-path suffix
// under "internal"), the zero-copy producers whose borrowed contract is
// load-bearing. Each must carry //atomlint:borrowed: a present but
// unannotated producer is a finding, and a listed name with no matching
// declaration is also a finding — a rename cannot silently drop a
// producer out of enforcement. The table doubles as the cross-package
// producer registry: a call from any swept package resolves against it,
// so consumers see the contract without reading the producer's source.
// Names use the display form "(*T).Name" / "T.Name" / "Name"; interface
// methods use "Iface.Name".
var requiredBorrowed = []struct {
	pkg string
	fns []string
}{
	{"mrt", []string{"(*BytesReader).Next", "(*Reader).Next", "ParseMessageInto", "ReadAll"}},
	{"bgp", []string{"(*Update).Attr", "(*Update).ASPathAttr"}},
	{"bgpstream", []string{"recordReader.Next", "(*Stream).NextBatch"}},
	{"aspath", []string{"(*Table).Seq"}},
	{"core", []string{"(*Snapshot).Row", "(*Snapshot).Route"}},
	{"atomd", []string{"(*FrameParser).Next"}},
}

func requiredBorrowedHas(pkgPath, display string) bool {
	for _, req := range requiredBorrowed {
		if !hasSuffixPath(pkgPath, []string{req.pkg}, "internal") {
			continue
		}
		for _, fn := range req.fns {
			if fn == display {
				return true
			}
		}
	}
	return false
}

var Aliasing = &Analyzer{
	Name: "aliasing",
	Doc:  "track values from //atomlint:borrowed zero-copy producers and flag escapes from the ownership window",
	Run:  runAliasing,
}

func runAliasing(pass *Pass) {
	if !hasSuffixPath(pass.Pkg.Path, aliasingPkgs, "internal") {
		return
	}
	dirs := collectLineDirectives(pass.Pkg, pass.Reportf)
	prods := collectProducers(pass)
	checkRequiredBorrowed(pass, prods)

	modRoot := moduleRoot(pass.Pkg.Path)
	view := func(t types.Type) bool { return viewLikeType(t, modRoot, nil) }
	isSource := func(call *ast.CallExpr) bool {
		fn := calleeFunc(pass.Pkg.Info, call)
		if fn == nil {
			return false
		}
		if prods.annotated[fn] {
			return true
		}
		return fn.Pkg() != nil && requiredBorrowedHas(fn.Pkg().Path(), typeFuncDisplay(fn))
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAliasingFunc(pass, fd, prods, dirs, view, isSource)
		}
	}
}

// producerInfo is the package's producer surface: every func decl and
// interface method by display name, and which carry //atomlint:borrowed.
type producerInfo struct {
	decls     map[string]ast.Node    // display name -> declaring node
	names     map[string]bool        // display name -> annotated
	annotated map[*types.Func]bool   // resolved annotated producers
}

// collectProducers enumerates the package's functions and interface
// methods, records the //atomlint:borrowed set, and validates each
// annotation: a producer whose signature cannot hand out a view (no
// view-like result, no pointer parameter to a view-like type) is a
// misannotation and is reported.
func collectProducers(pass *Pass) *producerInfo {
	prods := &producerInfo{
		decls:     map[string]ast.Node{},
		names:     map[string]bool{},
		annotated: map[*types.Func]bool{},
	}
	modRoot := moduleRoot(pass.Pkg.Path)
	record := func(name string, node ast.Node, doc *ast.CommentGroup, obj types.Object) {
		prods.decls[name] = node
		if !annotationHas(doc, "borrowed") {
			return
		}
		prods.names[name] = true
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		prods.annotated[fn] = true
		if sig, ok := fn.Type().(*types.Signature); ok && !signatureCanBorrow(sig, modRoot) {
			pass.Reportf(node.Pos(), "//atomlint:borrowed on %s, but no result or pointer parameter can carry a view: nothing to borrow", name)
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				record(funcDisplayName(d), d, d.Doc, pass.Pkg.Info.Defs[d.Name])
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						if len(m.Names) != 1 {
							continue
						}
						doc := m.Doc
						if doc == nil {
							doc = m.Comment
						}
						record(ts.Name.Name+"."+m.Names[0].Name, m, doc, pass.Pkg.Info.Defs[m.Names[0]])
					}
				}
			}
		}
	}
	return prods
}

// checkRequiredBorrowed enforces the requiredBorrowed table for the
// package under analysis, mirroring the hotpath kernel table.
func checkRequiredBorrowed(pass *Pass, prods *producerInfo) {
	for _, req := range requiredBorrowed {
		if !hasSuffixPath(pass.Pkg.Path, []string{req.pkg}, "internal") {
			continue
		}
		for _, fn := range req.fns {
			if prods.names[fn] {
				continue
			}
			if node, ok := prods.decls[fn]; ok {
				pass.Reportf(node.Pos(), "%s is a registered zero-copy producer: it must carry //atomlint:borrowed so consumers see the aliasing contract", fn)
			} else if len(pass.Pkg.Files) > 0 {
				pass.Reportf(pass.Pkg.Files[0].Name.Pos(), "required zero-copy producer %s not found in package: update requiredBorrowed if it was renamed", fn)
			}
		}
	}
}

// signatureCanBorrow reports whether a signature has any channel
// through which a view can leave: a view-like result, or a pointer (or
// slice-of-struct) parameter the producer can write views into.
func signatureCanBorrow(sig *types.Signature, modRoot string) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if viewLikeType(res.At(i).Type(), modRoot, nil) {
			return true
		}
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if p, ok := types.Unalias(params.At(i).Type()).(*types.Pointer); ok {
			if viewLikeType(p.Elem(), modRoot, nil) {
				return true
			}
		}
	}
	return false
}

// checkAliasingFunc runs the flow engine over one function and reports
// every escape of a borrowed value from the ownership window.
func checkAliasingFunc(pass *Pass, fd *ast.FuncDecl, prods *producerInfo,
	dirs []lineDirective, view func(types.Type) bool, isSource func(*ast.CallExpr) bool) {

	info := pass.Pkg.Info
	fl := newFlowFunc(pass.Pkg, isSource, view)
	fl.run(fd.Body)

	// A producer's own return of a borrowed value is the contract, not
	// an escape.
	display := funcDisplayName(fd)
	selfProducer := prods.names[display] || requiredBorrowedHas(pass.Pkg.Path, display)

	allowed := func(kind string, n ast.Node) bool {
		return declaredAt(dirs, kind, pass.Pkg.Fset.Position(n.Pos()))
	}

	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAliasingAssign(pass, fl, st, allowed)
		case *ast.SendStmt:
			if fl.exprTainted(st.Value) && !allowed("owned", st) {
				pass.Reportf(st.Pos(), "borrowed value sent on a channel: the receiver outlives the ownership window; copy first or declare //atomlint:owned")
			}
		case *ast.ReturnStmt:
			if selfProducer || insideFuncLit(parents) {
				return true
			}
			for _, r := range st.Results {
				if fl.exprTainted(r) && !allowed("owned", st) {
					pass.Reportf(st.Pos(), "borrowed value returned from %s, which is not an annotated producer: annotate //atomlint:borrowed or copy before returning", display)
					break
				}
			}
		case *ast.GoStmt:
			checkAliasingGo(pass, fl, st, allowed)
		case *ast.CallExpr:
			checkProducerOutParam(pass, fl, info, st, isSource, allowed)
		}
		return true
	})
}

func checkAliasingAssign(pass *Pass, fl *flowFunc, st *ast.AssignStmt, allowed func(string, ast.Node) bool) {
	info := fl.pkg.Info
	// Tuple producer form: x, err := producer() escapes only through
	// non-identifier targets; identifier bindings are taint transfers.
	taintedAt := func(i int) bool {
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !fl.isSource(call) {
				return false
			}
			tup, ok := info.TypeOf(call).(*types.Tuple)
			return ok && i < tup.Len() && fl.viewType(tup.At(i).Type())
		}
		return i < len(st.Rhs) && fl.exprTainted(st.Rhs[i])
	}
	for i, lhs := range st.Lhs {
		if !taintedAt(i) {
			continue
		}
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if localVarObj(info, l) != nil || l.Name == "_" {
				continue // local binding: taint transfer, not escape
			}
			if !allowed("owned", lhs) {
				pass.Reportf(lhs.Pos(), "borrowed value stored in package variable %s: it outlives every ownership window; copy or declare //atomlint:owned", l.Name)
			}
		case *ast.SelectorExpr:
			if !heapBase(info, l.X) {
				continue // field of a local value struct: propagation
			}
			if !allowed("owned", lhs) {
				pass.Reportf(lhs.Pos(), "borrowed value stored in heap-reachable field %s: the field outlives the ownership window; copy or declare //atomlint:owned", exprText(fl.pkg.Fset, l))
			}
		case *ast.IndexExpr:
			t := info.TypeOf(l.X)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Map:
				if !allowed("owned", lhs) {
					pass.Reportf(lhs.Pos(), "borrowed value stored in map %s: map entries outlive the ownership window; copy or declare //atomlint:owned", exprText(fl.pkg.Fset, l.X))
				}
			case *types.Slice:
				if !allowed("owned", lhs) {
					pass.Reportf(lhs.Pos(), "borrowed value stored in slice element %s: the backing array outlives the ownership window; copy or declare //atomlint:owned", exprText(fl.pkg.Fset, l))
				}
			default:
				if heapBase(info, l.X) && !allowed("owned", lhs) {
					pass.Reportf(lhs.Pos(), "borrowed value stored through %s into heap-reachable storage; copy or declare //atomlint:owned", exprText(fl.pkg.Fset, l.X))
				}
			}
		case *ast.StarExpr:
			if !allowed("owned", lhs) {
				pass.Reportf(lhs.Pos(), "borrowed value stored through pointer %s: the pointee outlives the ownership window; copy or declare //atomlint:owned", exprText(fl.pkg.Fset, l.X))
			}
		}
	}
}

func checkAliasingGo(pass *Pass, fl *flowFunc, st *ast.GoStmt, allowed func(string, ast.Node) bool) {
	for _, a := range st.Call.Args {
		if fl.exprTainted(a) && !allowed("owned", a) {
			pass.Reportf(a.Pos(), "borrowed value passed to a goroutine: the goroutine can outlive the ownership window; copy or declare //atomlint:owned")
		}
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		if id, captured := fl.capturedTainted(lit); captured && !allowed("owned", st) {
			pass.Reportf(st.Pos(), "goroutine closure captures borrowed value %s: the goroutine can outlive the ownership window; copy or declare //atomlint:owned", id.Name)
		}
	}
}

// checkProducerOutParam flags a producer call handed a pointer into
// heap-reachable storage (p.Field, a package var): the producer will
// write views there, extending the borrow beyond any local window. A
// deliberate per-window scratch slot is declared with //atomlint:scratch.
func checkProducerOutParam(pass *Pass, fl *flowFunc, info *types.Info, call *ast.CallExpr, isSource func(*ast.CallExpr) bool, allowed func(string, ast.Node) bool) {
	if !isSource(call) {
		return
	}
	for _, a := range call.Args {
		u, ok := unparen(a).(*ast.UnaryExpr)
		if !ok || u.Op.String() != "&" {
			continue
		}
		if heapBase(info, u.X) && !allowed("scratch", a) {
			pass.Reportf(a.Pos(), "zero-copy producer writes views through %s into heap-reachable storage: declare the slot //atomlint:scratch or use a local", exprText(fl.pkg.Fset, a))
		}
	}
}

// --- shared type/annotation helpers ---

// moduleRoot returns the first segment of an import path — the module
// root under which named types are considered transparent to the
// view-likeness scan.
func moduleRoot(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// viewLikeType reports whether a value of type t can carry a borrowed
// reference: a slice, an interface (which can box one), or a
// module-internal named type / struct / array that contains one.
// Foreign named types (stdlib, other modules) are opaque — netip.Addr's
// internal pointer does not make a Prefix a view — and pointers are
// not views themselves (a *T into an arena is tracked at the producer
// boundary, not by type shape).
func viewLikeType(t types.Type, modRoot string, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj == nil || obj.Pkg() == nil {
			return false // universe types (error, ...) are opaque
		}
		if p := obj.Pkg().Path(); p != modRoot && !strings.HasPrefix(p, modRoot+"/") {
			return false
		}
		if seen == nil {
			seen = map[types.Type]bool{}
		}
		seen[t] = true
		return viewLikeType(u.Underlying(), modRoot, seen)
	case *types.Slice:
		return true
	case *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if viewLikeType(u.Field(i).Type(), modRoot, seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return viewLikeType(u.Elem(), modRoot, seen)
	}
	return false
}

// calleeFunc resolves a call's target to its *types.Func (plain
// function, method, or interface method), or nil for indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		if inner, ok := f.X.(*ast.Ident); ok {
			fn, _ := info.Uses[inner].(*types.Func)
			return fn
		}
	}
	return nil
}

// typeFuncDisplay renders a *types.Func the way requiredBorrowed spells
// it: "Name", "T.Name", "(*T).Name", or "Iface.Name".
func typeFuncDisplay(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := types.Unalias(sig.Recv().Type())
	if p, ok := rt.(*types.Pointer); ok {
		if n, ok := types.Unalias(p.Elem()).(*types.Named); ok {
			return "(*" + n.Obj().Name() + ")." + fn.Name()
		}
		return fn.Name()
	}
	if n, ok := rt.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// annotationHas reports whether the comment group carries the given
// //atomlint: directive, with or without a trailing note.
func annotationHas(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//atomlint:"+directive)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// insideFuncLit reports whether the ancestor stack crosses a func
// literal — a return inside a closure returns to the closure's caller,
// still inside the enclosing window, so it is not judged here.
func insideFuncLit(parents []ast.Node) bool {
	for _, p := range parents {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}
