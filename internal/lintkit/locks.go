package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Locks enforces lock hygiene everywhere:
//
//   - no by-value copies of types that (transitively, through fields and
//     arrays — including the striped-lock tables) contain sync or
//     sync/atomic values: by-value receivers and parameters, assignments
//     from existing values, and by-value range variables;
//   - every Lock/RLock call must have a matching Unlock/RUnlock on the
//     same receiver within the function, and a non-deferred unlock must
//     not have a return between the lock and the unlock.
//
// Cross-function lock handoffs are rare and deliberate — suppress those
// sites with //atomlint:ignore locks <reason>.
var Locks = &Analyzer{
	Name: "locks",
	Doc:  "flag by-value copies of lock-bearing types and unbalanced Lock/Unlock pairs",
	Run:  runLocks,
}

func runLocks(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fd)
			if fd.Body != nil {
				checkLockPairing(pass, fd)
			}
		}
	}
}

// containsLockType reports whether t transitively holds a sync or
// sync/atomic value by value (pointers, slices, and maps break the
// chain — sharing those is fine).
func containsLockType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
		return containsLockType(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockType(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockType(u.Elem(), seen)
	}
	return false
}

func lockBearing(t types.Type) bool {
	return containsLockType(t, map[types.Type]bool{})
}

// checkLockCopies flags by-value receivers, parameters, assignments, and
// range variables of lock-bearing types.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	checkField := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if lockBearing(tv.Type) {
				pass.Reportf(field.Pos(), "%s passes %s by value, copying its lock state", kind, tv.Type)
			}
		}
	}
	checkField(fd.Recv, "receiver")
	if fd.Type.Params != nil {
		checkField(fd.Type.Params, "parameter")
	}

	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if i >= len(v.Lhs) {
					break
				}
				if !copiesExistingValue(rhs) {
					continue
				}
				tv, ok := info.Types[rhs]
				if !ok {
					continue
				}
				if lockBearing(tv.Type) {
					pass.Reportf(v.Pos(), "assignment copies %s by value, copying its lock state", tv.Type)
				}
			}
		case *ast.RangeStmt:
			if v.Value == nil {
				return true
			}
			// Range variables live in Defs (":=" form) or Uses ("=" form),
			// not in the Types map.
			var typ types.Type
			if tv, ok := info.Types[v.Value]; ok {
				typ = tv.Type
			} else if id, ok := v.Value.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					typ = obj.Type()
				} else if obj := info.Uses[id]; obj != nil {
					typ = obj.Type()
				}
			}
			if typ != nil && lockBearing(typ) {
				pass.Reportf(v.Value.Pos(), "range copies %s elements by value, copying their lock state (range over indices instead)", typ)
			}
		}
		return true
	})
}

// copiesExistingValue reports whether the expression reads an existing
// value (ident, field, deref, element) — the forms where assignment
// duplicates lock state. Composite literals and calls construct fresh
// values and are fine.
func copiesExistingValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesExistingValue(v.X)
	}
	return false
}

// lockCall describes one Lock/Unlock-family call site.
type lockCall struct {
	recv     string // receiver expression text, e.g. "sh.mu"
	read     bool   // RLock/RUnlock
	pos      token.Pos
	deferred bool
}

// checkLockPairing matches Lock calls to Unlocks per receiver text.
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	var locks, unlocks []lockCall
	var returns []token.Pos

	var inDefer func(parents []ast.Node) bool
	inDefer = func(parents []ast.Node) bool {
		for _, p := range parents {
			if _, ok := p.(*ast.DeferStmt); ok {
				return true
			}
		}
		return false
	}

	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, v.Pos())
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
				return true
			}
			// Only sync-ish receivers: the method must take no args.
			if len(v.Args) != 0 {
				return true
			}
			c := lockCall{
				recv:     exprText(pass.Pkg.Fset, sel.X),
				read:     strings.HasPrefix(name, "R"),
				pos:      v.Pos(),
				deferred: inDefer(parents),
			}
			if strings.HasSuffix(name, "Unlock") {
				unlocks = append(unlocks, c)
			} else {
				locks = append(locks, c)
			}
		}
		return true
	})

	for _, l := range locks {
		kind := "Lock"
		if l.read {
			kind = "RLock"
		}
		// The matching unlock: same receiver text, same read/write flavor.
		var after []lockCall
		found := false
		for _, u := range unlocks {
			if u.recv == l.recv && u.read == l.read {
				found = true
				if u.pos > l.pos || u.deferred {
					after = append(after, u)
				}
			}
		}
		if !found {
			pass.Reportf(l.pos, "%s.%s has no matching %sUnlock in this function (cross-function handoffs need an //atomlint:ignore locks)", l.recv, kind, rPrefix(l.read))
			continue
		}
		if len(after) == 0 {
			pass.Reportf(l.pos, "%s.%s is only unlocked before it is taken", l.recv, kind)
			continue
		}
		// A deferred unlock covers every return path. Otherwise no return
		// may sit between the lock and its first subsequent unlock.
		deferred := false
		first := token.Pos(-1)
		for _, u := range after {
			if u.deferred {
				deferred = true
			}
			if !u.deferred && (first == -1 || u.pos < first) {
				first = u.pos
			}
		}
		if deferred {
			continue
		}
		for _, r := range returns {
			if r > l.pos && r < first {
				pass.Reportf(r, "return between %s.%s and its %sUnlock leaves the lock held", l.recv, kind, rPrefix(l.read))
			}
		}
	}
}

func rPrefix(read bool) string {
	if read {
		return "R"
	}
	return ""
}
