package lintkit

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces the AllocsPerRun guarantees from the benchmark suite
// at review time: inside functions annotated
//
//	//atomlint:hotpath
//
// it flags heap-allocating constructs — &T{...} literals, slice and map
// composite literals, make/new, fmt calls (fmt.Errorf excepted: error
// construction is assumed to be the cold path), allocating
// string↔[]byte conversions, and func literals that escape (any closure
// not called on the spot). The non-escaping m[string(b)] map-lookup form
// is recognized and allowed.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocating constructs in //atomlint:hotpath functions; require the annotation on the pinned decode kernels",
	Run:  runHotpath,
}

// requiredHotpaths lists, per package (matched by import-path suffix
// under "internal", like the other scoped sweeps), the functions whose
// allocation-freedom is pinned by AllocsPerRun tests and benches. Each
// must carry //atomlint:hotpath so the sweep above covers it: a present
// but unannotated function is a finding, and a listed name with no
// matching declaration is also a finding — a rename cannot silently
// drop a kernel out of enforcement. Names use the display form
// "(*T).Name" / "T.Name" / "Name".
var requiredHotpaths = []struct {
	pkg string
	fns []string
}{
	{"mrt", []string{"(*BytesReader).Next"}},
	{"bgpstream", []string{"(*Stream).fill", "(*Stream).NextBatch"}},
	{"aspath", []string{"(*Table).Intern", "(*Table).Lookup"}},
	{"core", []string{"(*AtomIndex).ApplyUpdate", "(*AtomIndex).rowHash", "(*AtomIndex).rebucket"}},
	{"atomd", []string{"(*Server).SameAtom", "(*Server).MemberCount", "(*Server).PrefixAtom"}},
}

func runHotpath(pass *Pass) {
	decls := make(map[string]*ast.FuncDecl)
	annotated := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcDisplayName(fd)
			decls[name] = fd
			if !funcHasAnnotation(fd, "hotpath") {
				continue
			}
			annotated[name] = true
			checkHotpathFunc(pass, fd)
		}
	}
	checkRequiredHotpaths(pass, decls, annotated)
}

// checkRequiredHotpaths enforces the requiredHotpaths table for the
// package under analysis. Missing functions are reported at the first
// file's package clause — the finding is about the package's surface,
// not any one declaration.
func checkRequiredHotpaths(pass *Pass, decls map[string]*ast.FuncDecl, annotated map[string]bool) {
	for _, req := range requiredHotpaths {
		if !hasSuffixPath(pass.Pkg.Path, []string{req.pkg}, "internal") {
			continue
		}
		for _, fn := range req.fns {
			if annotated[fn] {
				continue
			}
			if fd, ok := decls[fn]; ok {
				pass.Reportf(fd.Pos(), "%s is a pinned hot-path kernel: it must carry //atomlint:hotpath so alloc regressions fail lint", fn)
			} else if len(pass.Pkg.Files) > 0 {
				pass.Reportf(pass.Pkg.Files[0].Name.Pos(), "required hot-path function %s not found in package: update requiredHotpaths if it was renamed", fn)
			}
		}
	}
}

// funcDisplayName renders a FuncDecl the way requiredHotpaths spells
// it: "Name" for plain functions, "T.Name" for value receivers,
// "(*T).Name" for pointer receivers.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return t.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	walkParents(fd.Body, func(n ast.Node, parents []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			checkHotpathComposite(pass, info, v, parents)
		case *ast.CallExpr:
			checkHotpathCall(pass, info, v, parents)
		case *ast.FuncLit:
			if !calledInPlace(v, parents) {
				pass.Reportf(v.Pos(), "closure in hot path: the func value and captured variables escape to the heap")
			}
		}
		return true
	})
}

// checkHotpathComposite flags composite literals that heap-allocate:
// &T{...}, slice literals, and map literals. A plain value struct/array
// literal assigned or passed by value stays on the stack.
func checkHotpathComposite(pass *Pass, info *types.Info, lit *ast.CompositeLit, parents []ast.Node) {
	if len(parents) > 0 {
		if u, ok := parents[len(parents)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			pass.Reportf(lit.Pos(), "&composite literal in hot path allocates")
			return
		}
		// The inner literal of &T{...} is reported via its parent; the
		// elements of a flagged slice/map literal need no second report.
		if _, ok := parents[len(parents)-1].(*ast.CompositeLit); ok {
			return
		}
	}
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in hot path allocates its backing array")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in hot path allocates")
	}
}

func checkHotpathCall(pass *Pass, info *types.Info, call *ast.CallExpr, parents []ast.Node) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path allocates")
			case "new":
				pass.Reportf(call.Pos(), "new in hot path allocates")
			}
			return
		}
	}
	if p := pkgOf(info, call); p == "fmt" {
		name := calleeName(call.Fun)
		if name != "Errorf" { // error construction is the cold path
			pass.Reportf(call.Pos(), "fmt.%s in hot path allocates (interface boxing + formatting buffers)", name)
		}
		return
	}
	checkHotpathConversion(pass, info, call, parents)
}

// checkHotpathConversion flags string([]byte) and []byte(string)
// conversions, which copy, except the compiler-optimized map-lookup key
// form m[string(b)].
func checkHotpathConversion(pass *Pass, info *types.Info, call *ast.CallExpr, parents []ast.Node) {
	target, ok := isTypeConversion(info, call)
	if !ok {
		return
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok {
		return
	}
	src := argTV.Type.Underlying()
	dst := target.Underlying()
	toString := isString(dst) && isByteSlice(src)
	toBytes := isByteSlice(dst) && isString(src)
	if !toString && !toBytes {
		return
	}
	if toString && isMapLookupKey(info, call, parents) {
		return
	}
	pass.Reportf(call.Pos(), "string↔[]byte conversion in hot path copies; only the m[string(b)] lookup form is allocation-free")
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isMapLookupKey reports whether the conversion is the index of a map
// read — m[string(b)] or v, ok := m[string(b)] — which the compiler
// compiles without materializing the string.
func isMapLookupKey(info *types.Info, conv *ast.CallExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	idx, ok := parents[len(parents)-1].(*ast.IndexExpr)
	if !ok || idx.Index != ast.Expr(conv) {
		return false
	}
	tv, ok := info.Types[idx.X]
	if !ok {
		return false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	// Assignment targets (m[string(b)] = v) are stores, not lookups; the
	// key escapes into the map and the conversion does allocate.
	if len(parents) >= 2 {
		if as, ok := parents[len(parents)-2].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == ast.Expr(idx) {
					return false
				}
			}
		}
	}
	return true
}

// calledInPlace reports whether the func literal is immediately invoked
// (fn(){...}() or a go/defer statement's call), so it never escapes.
func calledInPlace(fl *ast.FuncLit, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	call, ok := parents[len(parents)-1].(*ast.CallExpr)
	return ok && call.Fun == ast.Expr(fl)
}
