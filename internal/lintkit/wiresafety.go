package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wirePkgs are the binary codec packages the analyzer applies to.
var wirePkgs = []string{"mrt", "bgp"}

// WireSafety enforces bounds discipline in the wire codecs
// (internal/mrt, internal/bgp):
//
//   - a narrowing conversion of a length — uint16(len(x)),
//     byte(len(x)-y), or a conversion of a variable assigned from a
//     len() expression — must be dominated (in source order within the
//     function) by a condition mentioning that length, otherwise an
//     oversized value silently truncates on the wire;
//   - slice indexing of []byte values inside Parse* functions must be
//     preceded by a len() check of the same expression, otherwise a
//     truncated input panics instead of returning ErrTruncated.
//
// Both checks are heuristic (any earlier comparison on the same length
// counts as the guard) — they catch the missing-check class, not wrong
// bounds.
var WireSafety = &Analyzer{
	Name: "wiresafety",
	Doc:  "flag unguarded length narrowing and unchecked slice access in the wire codecs",
	Run:  runWireSafety,
}

func runWireSafety(pass *Pass) {
	if !hasSuffixPath(pass.Pkg.Path, wirePkgs, "internal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNarrowing(pass, fd)
			if name := fd.Name.Name; strings.HasPrefix(name, "Parse") || strings.HasPrefix(name, "parse") {
				checkParseIndexing(pass, fd)
			}
		}
	}
}

// lenGuards collects, per function, every condition position that
// mentions len(<text>) or compares <ident>: guardExprs maps the guarded
// expression text to the positions of its guards.
type lenGuards struct {
	fset *token.FileSet
	// conds are all condition expressions (if/for/switch) in the
	// function with their positions.
	conds []ast.Expr
}

func collectConds(fd *ast.FuncDecl) []ast.Expr {
	var conds []ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IfStmt:
			if v.Cond != nil {
				conds = append(conds, v.Cond)
			}
		case *ast.ForStmt:
			if v.Cond != nil {
				conds = append(conds, v.Cond)
			}
		case *ast.SwitchStmt:
			if v.Tag != nil {
				conds = append(conds, v.Tag)
			}
		}
		return true
	})
	return conds
}

// guardedBefore reports whether any condition before pos mentions
// len(<target>) (by expression text).
func guardedBefore(pass *Pass, conds []ast.Expr, pos token.Pos, target string) bool {
	info := pass.Pkg.Info
	for _, cond := range conds {
		if cond.Pos() >= pos {
			continue
		}
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "len" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if exprText(pass.Pkg.Fset, call.Args[0]) == target {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// identComparedBefore reports whether any condition before pos mentions
// the given object in a comparison — the guard form for a variable that
// holds a length (blen := len(dst)-start; if blen > 255 {...}).
func identComparedBefore(pass *Pass, conds []ast.Expr, pos token.Pos, obj types.Object) bool {
	info := pass.Pkg.Info
	for _, cond := range conds {
		if cond.Pos() >= pos {
			continue
		}
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// checkNarrowing flags uint8/uint16 conversions of length-derived values
// with no earlier condition on that length.
func checkNarrowing(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	conds := collectConds(fd)

	// Taint idents assigned from len() expressions: blen := len(dst)-start.
	tainted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, hasLen := containsLenCall(pass.Pkg.Fset, info, rhs); !hasLen {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					tainted[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, ok := isTypeConversion(info, call)
		if !ok || !isNarrowInt(target) {
			return true
		}
		arg := call.Args[0]
		if lenArg, hasLen := containsLenCall(pass.Pkg.Fset, info, arg); hasLen {
			if !guardedBefore(pass, conds, call.Pos(), lenArg) {
				pass.Reportf(call.Pos(), "%s narrows len(%s) with no earlier bounds check on it: oversized values truncate silently on the wire",
					typeName(target), lenArg)
			}
			return true
		}
		if id, ok := arg.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj != nil && tainted[obj] && !identComparedBefore(pass, conds, call.Pos(), obj) {
				pass.Reportf(call.Pos(), "%s narrows length-derived %s with no earlier bounds check on it", typeName(target), id.Name)
			}
		}
		return true
	})
}

// isNarrowInt reports whether the conversion target is an 8- or 16-bit
// integer — the widths a Go length can overflow.
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Uint16, types.Int8, types.Int16:
		return true
	}
	return false
}

func typeName(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Name()
	}
	return t.String()
}

// checkParseIndexing flags b[i] / b[i:j] on []byte values inside Parse*
// functions when no earlier condition checks len of the same expression.
func checkParseIndexing(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	conds := collectConds(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var base ast.Expr
		switch v := n.(type) {
		case *ast.IndexExpr:
			base = v.X
		case *ast.SliceExpr:
			base = v.X
		default:
			return true
		}
		tv, ok := info.Types[base]
		if !ok || !isByteSlice(tv.Type.Underlying()) {
			return true
		}
		switch base.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true // composite bases (f().x, a[i][j]) are out of scope
		}
		text := exprText(pass.Pkg.Fset, base)
		if !guardedBefore(pass, conds, n.Pos(), text) {
			pass.Reportf(n.Pos(), "indexing %s with no earlier len(%s) check: truncated input panics instead of returning an error", text, text)
		}
		return true
	})
}
