package lintkit

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprText renders an expression to its source form — the cheap
// structural-equality key the guard matchers use ("len(b)" guards uses
// of "b", wherever both appear).
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// walkParents traverses the AST depth-first, passing each node's
// ancestor stack (outermost first) to fn. Returning false prunes the
// subtree.
func walkParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// calleeName returns the bare name of a call target: "Sort" for
// sort.Slice or s.Sort, "len" for len. Empty for indirect calls.
func calleeName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	case *ast.ParenExpr:
		return calleeName(f.X)
	case *ast.IndexExpr: // generic instantiation
		return calleeName(f.X)
	}
	return ""
}

// pkgFunc reports whether the call is pkgname.Funcname on an imported
// package (not a method on a variable that shadows the name).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}

// pkgSel reports whether sel is a reference to pkg.name where pkg is an
// imported package — unlike pkgFunc it matches bare references too
// (`f := time.Now`), not only call sites.
func pkgSel(info *types.Info, sel *ast.SelectorExpr, pkg, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkg
}

// pkgOf returns the imported-package path of a selector call's
// qualifier, or "" when the callee is not a package-qualified function.
func pkgOf(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isTypeConversion reports whether the call is a conversion T(x),
// returning the target type.
func isTypeConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// containsLenCall scans e for a len(x) call and returns the text of the
// first argument found ("" if none).
func containsLenCall(fset *token.FileSet, info *types.Info, e ast.Expr) (string, bool) {
	var argText string
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		argText = exprText(fset, call.Args[0])
		found = true
		return false
	})
	return argText, found
}

// hasSuffixPath reports whether the import path ends with one of the
// given "internal/<name>" suffixes.
func hasSuffixPath(path string, names []string, under string) bool {
	for _, n := range names {
		if strings.HasSuffix(path, under+"/"+n) {
			return true
		}
	}
	return false
}

// funcHasAnnotation reports whether the function's doc comment (or any
// comment line inside the doc group) carries the given //atomlint:
// directive, e.g. "hotpath".
func funcHasAnnotation(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//atomlint:"+directive {
			return true
		}
	}
	return false
}
