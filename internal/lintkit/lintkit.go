// Package lintkit is the project's static-analysis framework: a
// stdlib-only (go/ast + go/parser + go/types) analyzer harness that
// mechanically enforces the invariants the pipeline's correctness rests
// on — determinism of the atom computation, allocation-freedom of the
// annotated hot paths, bounds discipline in the wire codecs, and lock
// hygiene. cmd/atomlint is the command-line driver; scripts/verify.sh
// gates every merge on a clean run.
//
// Findings are suppressed per line with
//
//	//atomlint:ignore <analyzer> <reason>
//
// which covers the directive's own line and the line below it. The
// reason is mandatory: a suppression without a stated justification is
// itself a finding.
package lintkit

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Diag is one finding.
type Diag struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one check: a name (used in ignore directives and output),
// a one-line doc string, and a Run function invoked once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer's view of one package plus the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diag
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diag{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the full analyzer suite, in output order.
var All = []*Analyzer{Determinism, Hotpath, WireSafety, Locks}

// byName resolves an analyzer name, for directive validation.
func byName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ignoreDirective is one parsed //atomlint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores parses every //atomlint:ignore directive in the
// package. Malformed directives (unknown analyzer, missing reason)
// become diagnostics themselves so suppressions can't silently rot.
func collectIgnores(pkg *Package, diags *[]Diag) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//atomlint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, Diag{Pos: pos, Analyzer: "lintkit",
						Message: "malformed atomlint:ignore directive: want \"//atomlint:ignore <analyzer> <reason>\""})
					continue
				}
				if byName(fields[0]) == nil {
					*diags = append(*diags, Diag{Pos: pos, Analyzer: "lintkit",
						Message: fmt.Sprintf("atomlint:ignore names unknown analyzer %q", fields[0])})
					continue
				}
				out = append(out, ignoreDirective{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive on its line or
// the line above.
func suppressed(d Diag, ignores []ignoreDirective) bool {
	for _, ig := range ignores {
		if ig.analyzer == d.Analyzer && ig.file == d.Pos.Filename &&
			(ig.line == d.Pos.Line || ig.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the analyzers to each package, filters suppressed
// findings, and returns the rest sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diag {
	var diags []Diag
	for _, pkg := range pkgs {
		var raw []Diag
		ignores := collectIgnores(pkg, &raw)
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &raw})
		}
		for _, d := range raw {
			if !suppressed(d, ignores) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Exit codes returned by Main.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Main is the driver behind cmd/atomlint: load the module at dir,
// filter packages by the given patterns ("./..." or import-path /
// directory prefixes; none means all), run the analyzers, and print
// findings to w. Returns the process exit code: 0 clean, 1 findings,
// 2 load error.
func Main(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) int {
	loader, err := NewLoader(dir)
	if err != nil {
		fmt.Fprintf(w, "atomlint: %v\n", err)
		return ExitError
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(w, "atomlint: %v\n", err)
		return ExitError
	}
	pkgs = filterPackages(pkgs, loader.ModPath, patterns)
	diags := RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "atomlint: %d finding(s)\n", len(diags))
		return ExitFindings
	}
	return ExitClean
}

// filterPackages selects the packages matching the command-line
// patterns. "./..." and "..." match everything; "./x/..." matches the
// subtree; "./x" or "mod/x" matches one package.
func filterPackages(pkgs []*Package, modPath string, patterns []string) []*Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(p *Package) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "." {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				full := modPath + "/" + sub
				if p.Path == full || strings.HasPrefix(p.Path, full+"/") ||
					p.Path == sub || strings.HasPrefix(p.Path, sub+"/") {
					return true
				}
				continue
			}
			if p.Path == pat || p.Path == modPath+"/"+pat {
				return true
			}
		}
		return false
	}
	var out []*Package
	for _, p := range pkgs {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}
