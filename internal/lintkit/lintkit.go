// Package lintkit is the project's static-analysis framework: a
// stdlib-only (go/ast + go/parser + go/types) analyzer harness that
// mechanically enforces the invariants the pipeline's correctness rests
// on — determinism of the atom computation, allocation-freedom of the
// annotated hot paths, bounds discipline in the wire codecs, and lock
// hygiene. cmd/atomlint is the command-line driver; scripts/verify.sh
// gates every merge on a clean run.
//
// Findings are suppressed per line with
//
//	//atomlint:ignore <analyzer> <reason>
//
// which covers the directive's own line and the line below it. The
// reason is mandatory: a suppression without a stated justification is
// itself a finding.
package lintkit

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
)

// Diag is one finding.
type Diag struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one check: a name (used in ignore directives and output),
// a one-line doc string, and a Run function invoked once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer's view of one package plus the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diag
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diag{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the full analyzer suite, in output order.
var All = []*Analyzer{Determinism, Hotpath, WireSafety, Locks, Aliasing, Lifecycle}

// byName resolves an analyzer name, for directive validation.
func byName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ignoreDirective is one parsed //atomlint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores parses every //atomlint:ignore directive in the
// package. Malformed directives (unknown analyzer, missing reason)
// become diagnostics themselves so suppressions can't silently rot.
func collectIgnores(pkg *Package, diags *[]Diag) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//atomlint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, Diag{Pos: pos, Analyzer: "lintkit",
						Message: "malformed atomlint:ignore directive: want \"//atomlint:ignore <analyzer> <reason>\""})
					continue
				}
				if byName(fields[0]) == nil {
					*diags = append(*diags, Diag{Pos: pos, Analyzer: "lintkit",
						Message: fmt.Sprintf("atomlint:ignore names unknown analyzer %q", fields[0])})
					continue
				}
				out = append(out, ignoreDirective{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive on its line or
// the line above.
func suppressed(d Diag, ignores []ignoreDirective) bool {
	for _, ig := range ignores {
		if ig.analyzer == d.Analyzer && ig.file == d.Pos.Filename &&
			(ig.line == d.Pos.Line || ig.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the analyzers to each package sequentially,
// filters suppressed findings, and returns the rest sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diag {
	diags, _ := runGrid(pkgs, analyzers, 1)
	return diags
}

// AnalyzerTiming is one analyzer's wall time summed across its
// per-package tasks (concurrent tasks overlap, so the sum can exceed
// the run's wall clock).
type AnalyzerTiming struct {
	Name string
	Wall time.Duration
}

// runGrid fans the analyzer×package task grid out over a bounded worker
// pool. Every task reports into its own slot and the merge walks slots
// in (package, analyzer) order before the final position sort, so the
// diagnostic stream is byte-identical at any worker count. Directive
// parsing stays sequential: it is cheap, and its malformed-directive
// findings must precede the analyzers' in the pre-sort stream.
func runGrid(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diag, []AnalyzerTiming) {
	ignoreDiags := make([][]Diag, len(pkgs))
	ignores := make([][]ignoreDirective, len(pkgs))
	for i, pkg := range pkgs {
		ignores[i] = collectIgnores(pkg, &ignoreDiags[i])
	}

	slots := make([][]Diag, len(pkgs)*len(analyzers))
	wall := make([]atomic.Int64, len(analyzers))
	parallel.ForEach(workers, len(slots), func(t int) error {
		i, j := t/len(analyzers), t%len(analyzers)
		start := time.Now()
		analyzers[j].Run(&Pass{Analyzer: analyzers[j], Pkg: pkgs[i], diags: &slots[t]})
		wall[j].Add(int64(time.Since(start)))
		return nil
	})

	var diags []Diag
	for i := range pkgs {
		raw := append([]Diag(nil), ignoreDiags[i]...)
		for j := range analyzers {
			raw = append(raw, slots[i*len(analyzers)+j]...)
		}
		for _, d := range raw {
			if !suppressed(d, ignores[i]) {
				diags = append(diags, d)
			}
		}
	}
	// Stable: diagnostics sharing a position keep the deterministic
	// (package, directive-then-analyzer) merge order above.
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	timings := make([]AnalyzerTiming, len(analyzers))
	for j, a := range analyzers {
		timings[j] = AnalyzerTiming{Name: a.Name, Wall: time.Duration(wall[j].Load())}
	}
	return diags, timings
}

// Exit codes returned by Main.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Options configures a driver run beyond the analyzer set.
type Options struct {
	// Workers bounds the analyzer×package tasks in flight; 0 means one
	// per CPU, 1 runs inline. Findings are byte-identical at any count.
	Workers int
	// JSON emits the findings as a JSON array on w (machine-readable,
	// for CI artifacts) instead of one text line per finding.
	JSON bool
	// Timings, when non-nil, receives one per-analyzer wall-time line
	// after the run — kept off w so findings output stays stable.
	Timings io.Writer
}

// Main is the driver behind cmd/atomlint: load the module at dir,
// filter packages by the given patterns ("./..." or import-path /
// directory prefixes; none means all), run the analyzers, and print
// findings to w. Returns the process exit code: 0 clean, 1 findings,
// 2 load error.
func Main(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) int {
	return MainOpts(w, dir, patterns, analyzers, Options{Workers: 1})
}

// MainOpts is Main with explicit Options.
func MainOpts(w io.Writer, dir string, patterns []string, analyzers []*Analyzer, opts Options) int {
	loader, err := NewLoader(dir)
	if err != nil {
		fmt.Fprintf(w, "atomlint: %v\n", err)
		return ExitError
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(w, "atomlint: %v\n", err)
		return ExitError
	}
	pkgs = filterPackages(pkgs, loader.ModPath, patterns)
	diags, timings := runGrid(pkgs, analyzers, opts.Workers)
	if opts.Timings != nil {
		for _, tm := range timings {
			fmt.Fprintf(opts.Timings, "atomlint: %-12s %s\n", tm.Name, tm.Wall.Round(time.Millisecond))
		}
	}
	if opts.JSON {
		writeDiagsJSON(w, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(w, "atomlint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// writeDiagsJSON emits findings as a JSON array (always an array, `[]`
// when clean) so CI can archive the run's findings as an artifact.
func writeDiagsJSON(w io.Writer, diags []Diag) {
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// filterPackages selects the packages matching the command-line
// patterns. "./..." and "..." match everything; "./x/..." matches the
// subtree; "./x" or "mod/x" matches one package.
func filterPackages(pkgs []*Package, modPath string, patterns []string) []*Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(p *Package) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "." {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				full := modPath + "/" + sub
				if p.Path == full || strings.HasPrefix(p.Path, full+"/") ||
					p.Path == sub || strings.HasPrefix(p.Path, sub+"/") {
					return true
				}
				continue
			}
			if p.Path == pat || p.Path == modPath+"/"+pat {
				return true
			}
		}
		return false
	}
	var out []*Package
	for _, p := range pkgs {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}
