// Golden end-to-end fixture: a small seeded gensim scenario whose MRT
// archives are checked in under testdata/golden/, with the pipeline's
// output over them pinned byte-for-byte. Any change to the collector
// emitters, the MRT codec, the stream layer, sanitization, or atom
// computation that alters a single output byte fails here and must be
// re-pinned deliberately with:
//
//	go test -run TestGolden -update
package repro

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/bgpstream"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultgen/harness"
	"repro/internal/longitudinal"
	"repro/internal/sanitize"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

const goldenDir = "testdata/golden"

// goldenConfig pins the scenario: every constant here is part of the
// fixture's identity. Changing any of them requires -update.
func goldenConfig() harness.Config {
	return harness.Config{
		TopoSeed:   31,
		Scale:      0.002,
		Year:       2012,
		Quarter:    1,
		Collectors: 2,
		Workers:    1,
	}
}

// checkGolden byte-compares got against the pinned fixture, or rewrites
// the fixture under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (rerun with -update to pin): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Errorf("%s drifted: generated %d bytes, pinned %d, first difference at byte %d\n"+
			"if the change is intentional, re-pin with `go test -run TestGolden -update`",
			name, len(got), len(want), i)
	}
}

// TestGoldenArchives pins every MRT archive the scenario emits: the
// collector emitters and the MRT writer may not change a byte without a
// deliberate re-pin.
func TestGoldenArchives(t *testing.T) {
	w := harness.BuildWorld(goldenConfig())
	if len(w.Ribs) == 0 || len(w.Upds) == 0 {
		t.Fatal("golden world generated no archives")
	}
	for name, data := range w.Ribs {
		checkGolden(t, name+".rib.mrt", data)
	}
	for name, data := range w.Upds {
		checkGolden(t, name+".updates.mrt", data)
	}
}

// TestGoldenPipeline pins the full pipeline's verdict over the golden
// archives — stream, sanitize, atoms — as canonical text.
func TestGoldenPipeline(t *testing.T) {
	cfg := goldenConfig()
	w := harness.BuildWorld(cfg)

	srcNames := make([]string, 0, len(w.Upds))
	for name := range w.Upds {
		srcNames = append(srcNames, name)
	}
	sort.Strings(srcNames)
	var upds []bgpstream.Source
	for _, name := range srcNames {
		upds = append(upds, bgpstream.BytesSource(name, w.Upds[name], bgp.Options{}))
	}
	us := bgpstream.NewStream(nil, upds...)
	elems, err := us.All()
	if err != nil {
		t.Fatal(err)
	}

	ribNames := make([]string, 0, len(w.Ribs))
	for name := range w.Ribs {
		ribNames = append(ribNames, name)
	}
	sort.Strings(ribNames)
	var ribs []bgpstream.Source
	for _, name := range ribNames {
		ribs = append(ribs, bgpstream.BytesSource(name, w.Ribs[name], bgp.Options{}))
	}
	opts := sanitize.Defaults()
	opts.SessionFlaps = us.StateFlaps()
	snap, rep, err := sanitize.Clean(ribs, us.Warnings(), opts)
	if err != nil {
		t.Fatal(err)
	}
	atoms := core.ComputeAtoms(snap)

	var b strings.Builder
	fmt.Fprintf(&b, "golden pipeline v1\n")
	fmt.Fprintf(&b, "scenario topo=%d scale=%g era=%dQ%d collectors=%d\n",
		cfg.TopoSeed, cfg.Scale, cfg.Year, cfg.Quarter, cfg.Collectors)
	fmt.Fprintf(&b, "updates elems=%d warnings=%d\n", len(elems), len(us.Warnings()))
	fmt.Fprintf(&b, "feeds total=%d full=%d threshold=%d removed-peers=%d quarantined=%d\n",
		len(rep.Feeds), rep.FullFeeds, rep.FullFeedThreshold,
		len(rep.RemovedPeerASes), rep.QuarantinedFeeds)
	fmt.Fprintf(&b, "snapshot vps=%d prefixes=%d\n", len(snap.VPs), len(snap.Prefixes))
	fmt.Fprintf(&b, "atoms %d\n", len(atoms.Atoms))
	sizes := map[int]int{}
	for i := range atoms.Atoms {
		sizes[atoms.Atoms[i].Size()]++
	}
	var order []int
	for sz := range sizes {
		order = append(order, sz)
	}
	sort.Ints(order)
	for _, sz := range order {
		fmt.Fprintf(&b, "atom-size %d count %d\n", sz, sizes[sz])
	}
	for _, f := range rep.Feeds {
		fmt.Fprintf(&b, "feed %s full=%t prefixes=%d dups=%d\n",
			f.VP, f.FullFeed, f.UniquePrefixes, f.Duplicates)
	}
	checkGolden(t, "pipeline.txt", []byte(b.String()))
}

// TestGoldenExperiment pins one cheap experiment's rendered output end
// to end — the same artifact `go run ./cmd/atomrepro -only table1`
// prints at this scale.
func TestGoldenExperiment(t *testing.T) {
	e, ok := experiments.ByID("table1")
	if !ok {
		t.Fatal("experiment table1 not registered")
	}
	cfg := longitudinal.DefaultConfig(7)
	cfg.Scale = 0.004
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.txt", buf.Bytes())
}

// TestExperimentDeterministicAcrossDecodeWorkers renders Table 1 with
// sequential decode and with the full fan-out (workers=8: per-source
// decode, snapshot build, atom grouping all parallel) and demands
// byte-identical text. This is the end-to-end face of the stream
// merge-order contract: no worker count may move a single character of
// a published table.
func TestExperimentDeterministicAcrossDecodeWorkers(t *testing.T) {
	e, ok := experiments.ByID("table1")
	if !ok {
		t.Fatal("experiment table1 not registered")
	}
	render := func(workers int) []byte {
		cfg := longitudinal.DefaultConfig(7)
		cfg.Scale = 0.004
		cfg.Workers = workers
		var buf bytes.Buffer
		if err := e.Run(cfg, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := render(1)
	eight := render(8)
	if !bytes.Equal(one, eight) {
		i := 0
		for i < len(one) && i < len(eight) && one[i] == eight[i] {
			i++
		}
		t.Errorf("table1 output diverges between decode workers 1 and 8 at byte %d\nworkers=1:\n%s\nworkers=8:\n%s", i, one, eight)
	}
}
