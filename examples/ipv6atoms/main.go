// IPv6 atoms: compute policy atoms separately for IPv4 and IPv6 at the
// 2024 era and compare their structure (the paper's §5), including the
// FITI-style burst of single-/32 ASes.
//
//	go run ./examples/ipv6atoms
package main

import (
	"fmt"
	"net/netip"
	"os"

	"repro/internal/longitudinal"
	"repro/internal/textplot"
	"repro/internal/topology"
)

func main() {
	cfg := longitudinal.DefaultConfig(42)
	cfg.Scale = 0.006

	era := topology.EraOf(2024, 4)
	v4cfg := cfg
	v4cfg.Family = 4
	r4, err := longitudinal.RunEra(v4cfg, era)
	check(err)
	v6cfg := cfg
	v6cfg.Family = 6
	r6, err := longitudinal.RunEra(v6cfg, era)
	check(err)

	s4, s6 := r4.Stats, r6.Stats
	tbl := &textplot.Table{Title: "IPv4 vs IPv6 policy atoms (2024)",
		Headers: []string{"Metric", "IPv4", "IPv6"}}
	tbl.AddRow("Prefixes", fmt.Sprint(s4.Prefixes), fmt.Sprint(s6.Prefixes))
	tbl.AddRow("ASes", fmt.Sprint(s4.ASes), fmt.Sprint(s6.ASes))
	tbl.AddRow("Atoms", fmt.Sprint(s4.Atoms), fmt.Sprint(s6.Atoms))
	tbl.AddRow("Mean atom size", fmt.Sprintf("%.2f", s4.MeanAtomSize), fmt.Sprintf("%.2f", s6.MeanAtomSize))
	tbl.AddRow("Single-atom ASes", pct(s4.SingleAtomASes, s4.ASes), pct(s6.SingleAtomASes, s6.ASes))
	tbl.AddRow("Single-prefix atoms", pct(s4.SinglePrefixAtoms, s4.Atoms), pct(s6.SinglePrefixAtoms, s6.Atoms))
	tbl.AddRow("CAM after 8h", textplot.Percent(r4.Stab8h.CAM), textplot.Percent(r6.Stab8h.CAM))
	tbl.AddRow("CAM after 1w", textplot.Percent(r4.Stab1w.CAM), textplot.Percent(r6.Stab1w.CAM))
	tbl.Render(os.Stdout)

	// The FITI effect: single-/32 ASes under 240a:a000::/20 (§5.1).
	fiti := netip.MustParsePrefix("240a:a000::/20")
	fitiPrefixes, fitiASes := 0, map[uint32]bool{}
	for i := range r6.Atoms.Atoms {
		a := &r6.Atoms.Atoms[i]
		for _, p := range r6.Atoms.PrefixSet(a.ID) {
			if fiti.Contains(p.Addr()) {
				fitiPrefixes++
				fitiASes[a.Origin] = true
			}
		}
	}
	fmt.Printf("\nFITI-style testbed: %d /32 prefixes from %d ASes inside %v\n",
		fitiPrefixes, len(fitiASes), fiti)
	fmt.Println("(kept in the analysis, as the paper does: they are legitimate prefixes)")
}

func pct(n, d int) string {
	if d == 0 {
		return "0"
	}
	return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(d))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
