// Quickstart: simulate a small Internet, collect BGP snapshots the way
// RIPE RIS / RouteViews would, sanitize the data with the paper's §2.4
// pipeline, and compute policy atoms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/sanitize"
	"repro/internal/topology"
)

func main() {
	// 1. A deterministic miniature Internet, as of 2024 Q4.
	params := topology.DefaultParams(42)
	params.Scale = 0.005 // ~0.5% of the real Internet
	graph := topology.Generate(params, topology.EraOf(2024, 4))
	v4, v6 := graph.TotalPrefixes()
	fmt.Printf("world: %d ASes, %d IPv4 + %d IPv6 prefixes, %d policy groups\n",
		graph.NumASes(), v4, v6, len(graph.Groups))

	// 2. Collector infrastructure: full- and partial-feed peers.
	infra := collector.BuildInfra(graph, collector.Config{Seed: 1})
	fmt.Printf("collectors: %d, distinct full-feed peer ASes: %d\n",
		len(infra.Collectors), len(infra.FullFeedASNs()))

	// 3. Every peer's routing table (the fast in-memory path; BuildRIBs
	// produces the identical data as RFC 6396 MRT archives).
	feeds := collector.BuildFeeds(graph, infra, nil, collector.EpochOf(graph.Era))

	// 4. The paper's sanitization: full-feed inference, abnormal-peer
	// removal, prefix-length and visibility filters.
	snap, report, err := sanitize.CleanFeeds(feeds, nil, sanitize.Defaults())
	if err != nil {
		panic(err)
	}
	fmt.Printf("sanitized: %d vantage points, %d/%d prefixes admitted\n",
		len(snap.VPs), report.PrefixesAdmitted, report.PrefixesSeen)

	// 5. Policy atoms: groups of prefixes sharing the same AS path at
	// every vantage point.
	atoms := core.ComputeAtoms(snap)
	stats := atoms.Stats()
	fmt.Printf("atoms: %d across %d ASes (mean size %.2f, largest %d, single-prefix %.1f%%)\n",
		stats.Atoms, stats.ASes, stats.MeanAtomSize, stats.LargestAtom,
		100*float64(stats.SinglePrefixAtoms)/float64(stats.Atoms))

	// Peek inside the largest atom.
	best := 0
	for i := range atoms.Atoms {
		if atoms.Atoms[i].Size() > atoms.Atoms[best].Size() {
			best = i
		}
	}
	a := &atoms.Atoms[best]
	fmt.Printf("\nlargest atom: %d prefixes originated by AS%d, e.g.:\n", a.Size(), a.Origin)
	for i, p := range atoms.PrefixSet(best) {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", p)
	}
	for v := range snap.VPs {
		if seq := snap.Paths.Seq(a.Vector[v]); seq != nil {
			fmt.Printf("path at %v: %v\n", snap.VPs[v], seq)
			break
		}
	}
}
