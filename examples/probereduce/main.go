// Probe reduction + dynamics lens: the two applications the paper's
// related work and §7.2 discussion motivate, end to end.
//
// First, build an iPlane/Netdiff-style probing plan (one representative
// prefix per atom) and watch its accuracy decay over simulated weeks —
// the trade-off that made those systems refresh atom lists biweekly.
// Second, run the policy-atom lens over an update stream to separate
// atom-level events (policy changes) from single-prefix noise.
//
//	go run ./examples/probereduce
package main

import (
	"fmt"
	"os"

	"repro/internal/dynamics"
	"repro/internal/longitudinal"
	"repro/internal/probing"
	"repro/internal/textplot"
	"repro/internal/topology"
)

func main() {
	cfg := longitudinal.DefaultConfig(42)
	cfg.Scale = 0.008
	run := longitudinal.NewEraRun(cfg, topology.EraOf(2016, 1))

	base, _, err := run.SnapshotAt(longitudinal.OffsetBase)
	check(err)
	plan := probing.BuildPlan(base)
	fmt.Printf("probing plan: %d targets for %d prefixes — %.1f%% fewer probes\n",
		len(plan.Representatives), plan.TotalPrefixes, 100*plan.Reduction())

	tbl := &textplot.Table{Title: "\nplan accuracy as the atom list ages",
		Headers: []string{"age", "accuracy", "stale prefixes"}}
	for _, age := range []float64{0, 1, 7, 14, 28} {
		snap, _, err := run.SnapshotAt(longitudinal.OffsetBase + age)
		check(err)
		acc := plan.Accuracy(snap.Snap)
		tbl.AddRow(fmt.Sprintf("%.0fd", age), textplot.Percent(acc.Rate()),
			fmt.Sprint(len(plan.StalePrefixes(snap.Snap))))
	}
	tbl.Render(os.Stdout)
	fmt.Println("(iPlane refreshed its atom list every two weeks — the decay above is why)")

	// The dynamics lens over four hours of updates.
	records, _, err := run.Updates(longitudinal.OffsetBase, longitudinal.OffsetBase+longitudinal.UpdateHours)
	check(err)
	rep := dynamics.Classify(base, records, dynamics.DefaultOptions())
	fmt.Printf("\ndynamics lens over %d update records:\n", len(records))
	fmt.Printf("  atom-level events: %d (policy changes / network events)\n", rep.AtomEvents)
	fmt.Printf("  partial coverage:  %d (splits in progress)\n", rep.Partials)
	fmt.Printf("  noise:             %d (%.0f%% of incidences — filterable flaps)\n",
		rep.Noise, 100*rep.NoiseShare())
	fmt.Printf("  singletons:        %d\n", rep.Singletons)

	pri := rep.Prioritized()
	n := 3
	if len(pri) < n {
		n = len(pri)
	}
	fmt.Println("\nhighest-signal atoms with events (prioritize these):")
	for _, h := range pri[:n] {
		fmt.Printf("  atom %d (size %d): %d atom events, %d noise, stability score %.2f\n",
			h.AtomID, h.Size, h.AtomEvents, h.Noise, h.StabilityScore())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
