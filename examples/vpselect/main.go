// Vantage-point selection: detect unreliable VPs from atom-split
// observations (the paper's §4.4.1 and §7.1). Most atom splits are
// visible at very few VPs; tracking which VP keeps "breaking" atoms
// identifies feeds whose local policy churn would otherwise masquerade
// as network-wide events.
//
//	go run ./examples/vpselect
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/longitudinal"
	"repro/internal/textplot"
	"repro/internal/topology"
)

func main() {
	cfg := longitudinal.DefaultConfig(42)
	cfg.Scale = 0.005

	const days = 14
	fmt.Printf("processing %d daily snapshots around 2018Q1...\n", days+2)
	study, err := longitudinal.RunSplits(cfg, topology.EraOf(2018, 1), days)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\n%d split events; observer CDF:\n", study.CDF.Total)
	for _, n := range []int{1, 2, 3, 5, 10} {
		fmt.Printf("  <=%2d VPs: %s\n", n, textplot.Percent(study.CDF.FractionAtMost(n)))
	}
	fmt.Println("(paper: ~60% of events visible to one VP, ~80% to at most three)")

	// Rank VPs by how many single-observer splits they alone reported.
	blame := map[core.VP]int{}
	total := 0
	for _, d := range study.Days {
		blame[d.TopVP] += d.TopVPEvents
		blame[d.SecondVP] += d.SecondVPEvents
		total += d.SingleObserver
	}
	delete(blame, core.VP{})
	type kv struct {
		vp core.VP
		n  int
	}
	var ranked []kv
	for vp, n := range blame {
		ranked = append(ranked, kv{vp, n})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })

	tbl := &textplot.Table{Title: "\nVPs ranked by single-observer split events",
		Headers: []string{"vantage point", "events", "share of single-VP splits"}}
	for i, e := range ranked {
		if i == 5 {
			break
		}
		tbl.AddRow(e.vp.String(), fmt.Sprint(e.n), textplot.Percent(float64(e.n)/float64(max(1, total))))
	}
	tbl.Render(os.Stdout)
	if len(ranked) > 0 && total > 0 {
		fmt.Printf("\nrecommendation: for global routing-policy studies, exclude %v —\n", ranked[0].vp)
		fmt.Println("its local policy churn dominates the split signal; for coverage-maximizing")
		fmt.Println("uses (probing per atom instead of per prefix), keep every VP.")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
