// Update correlation: do prefixes of one atom move together in BGP
// UPDATE messages? Reproduces the §3.3 methodology over a day of
// synthesized updates and prints Pr_full(k) for atoms versus ASes.
//
//	go run ./examples/updatecorr
package main

import (
	"fmt"
	"os"

	"repro/internal/longitudinal"
	"repro/internal/metrics"
	"repro/internal/textplot"
	"repro/internal/topology"
)

func main() {
	cfg := longitudinal.DefaultConfig(42)
	cfg.Scale = 0.02

	run := longitudinal.NewEraRun(cfg, topology.EraOf(2018, 1))
	atoms, _, err := run.SnapshotAt(longitudinal.OffsetBase)
	check(err)

	// The paper's 4-hour update window after the snapshot: correlation
	// is measured against the same instant the atoms were computed.
	records, warnings, err := run.Updates(longitudinal.OffsetBase, longitudinal.OffsetBase+longitudinal.UpdateHours)
	check(err)
	fmt.Printf("collected %d update records (%d parse warnings from damaged feeds)\n",
		len(records), len(warnings))

	corr := metrics.CorrelateUpdates(atoms, records, 7)
	tbl := &textplot.Table{
		Title:   "Pr(entity seen in full | >=1 of its prefixes in the update)",
		Headers: []string{"prefixes k", "atoms", "ASes", "multi-atom ASes", "single-prefix-atom ASes"},
	}
	for k := 2; k <= 7; k++ {
		tbl.AddRow(fmt.Sprint(k),
			textplot.Percent(corr.Atom[k].Pr()),
			textplot.Percent(corr.AS[k].Pr()),
			textplot.Percent(corr.ASMultiAtom[k].Pr()),
			textplot.Percent(corr.ASSinglePrefixAtoms[k].Pr()))
	}
	tbl.Render(os.Stdout)
	fmt.Println("\nreading: the atom column sits above the AS column — prefixes move")
	fmt.Println("at the atom level, not the AS level (the paper's core §4.2 finding);")
	fmt.Println("ASes whose atoms are all single-prefix are almost never seen in full.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
