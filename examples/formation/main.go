// Formation-distance walkthrough: a hand-built topology whose atoms
// split at known distances demonstrates each mechanism the paper
// describes — origin prepending (distance 1), origin selective announce
// (distance 2), and transit selective export (distance 3) — and shows
// how the three prepending-handling methods of §3.4.2 disagree.
//
//	go run ./examples/formation
package main

import (
	"fmt"
	"net/netip"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/textplot"
	"repro/internal/topology"
)

func main() {
	// Topology: two Tier-1s peering; transits T1(11),T2(12) under A;
	// T3(13) under B. The origin (100) is a customer of 11 and 12.
	// Vantage points 21, 22, 23 hang under each transit.
	ases := []*topology.AS{
		{ASN: 1, Tier: topology.TierClique, Peers: []uint32{2}},
		{ASN: 2, Tier: topology.TierClique, Peers: []uint32{1}},
		{ASN: 11, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 12, Tier: topology.TierTransit, Providers: []uint32{1}},
		{ASN: 13, Tier: topology.TierTransit, Providers: []uint32{2}},
		{ASN: 21, Tier: topology.TierStub, Providers: []uint32{11}},
		{ASN: 22, Tier: topology.TierStub, Providers: []uint32{12}},
		{ASN: 23, Tier: topology.TierStub, Providers: []uint32{13}},
		{ASN: 100, Tier: topology.TierStub, Providers: []uint32{11, 12}},
	}
	pfx := func(i int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)
	}
	groups := []*topology.PolicyGroup{
		// Group 0: the baseline — announced to both providers.
		{ID: 0, Origin: 100, Prefixes: []netip.Prefix{pfx(0), pfx(1)},
			Announce: map[uint32]topology.AnnouncePolicy{11: {}, 12: {}}},
		// Group 1: same announce set, origin prepends 2× toward 11 —
		// method (iii) resolves this as a distance-1 split.
		{ID: 1, Origin: 100, Prefixes: []netip.Prefix{pfx(2)},
			Announce: map[uint32]topology.AnnouncePolicy{11: {Prepend: 2}, 12: {}}},
		// Group 2: selective announce (only to 12) — distance-2 split.
		{ID: 2, Origin: 100, Prefixes: []netip.Prefix{pfx(3)},
			Announce: map[uint32]topology.AnnouncePolicy{12: {}}},
	}
	ases[8].Groups = groups
	g := topology.NewGraph(topology.EraOf(2024, 1), 1, ases, groups)

	vps := []core.VP{{Collector: "rrc00", ASN: 21}, {Collector: "rrc00", ASN: 22}, {Collector: "rrc00", ASN: 23}}
	vpASNs := []uint32{21, 22, 23}
	eng := routing.NewEngine(g, nil)

	var prefixes []netip.Prefix
	for _, grp := range groups {
		prefixes = append(prefixes, grp.Prefixes...)
	}
	snap := core.NewSnapshot(0, vps, prefixes)
	idx := map[netip.Prefix]int{}
	for i, p := range prefixes {
		idx[p] = i
	}
	for _, grp := range groups {
		routes := eng.PathsAt(grp, vpASNs)
		for v, r := range routes {
			if r.Path == nil {
				continue
			}
			for _, p := range grp.Prefixes {
				snap.SetRoute(idx[p], v, r.Path)
			}
		}
	}

	fmt.Println("observed paths (VP-first, origin last):")
	for p := range prefixes {
		fmt.Printf("  %v:\n", prefixes[p])
		for v := range vps {
			fmt.Printf("    at AS%d: %v\n", vps[v].ASN, snap.Route(p, v))
		}
	}

	atoms := core.ComputeAtoms(snap)
	fmt.Printf("\natoms: %d (groups were %d — group 0's two prefixes stay together)\n",
		len(atoms.Atoms), len(groups))

	for _, method := range []metrics.FormationMethod{
		metrics.MethodUniqueCount, metrics.MethodStripBeforeDistance, metrics.MethodStripBeforeGrouping,
	} {
		opts := metrics.DefaultFormationOptions()
		opts.Method = method
		res := metrics.FormationDistances(atoms, opts)
		tbl := &textplot.Table{
			Title:   fmt.Sprintf("\nformation distances, method (%s)", methodName(method)),
			Headers: []string{"distance", "atoms"},
		}
		for d := 1; d < len(res.AtomsAtDistance); d++ {
			if res.AtomsAtDistance[d] > 0 {
				tbl.AddRow(fmt.Sprint(d), fmt.Sprint(res.AtomsAtDistance[d]))
			}
		}
		tbl.Render(os.Stdout)
		if method == metrics.MethodUniqueCount {
			fmt.Printf("  distance-1 causes: single-atom=%d unique-peers=%d prepend=%d\n",
				res.D1SingleAtom, res.D1UniquePeers, res.D1Prepend)
		}
		if method == metrics.MethodStripBeforeGrouping {
			fmt.Printf("  note: method (i) groups on stripped paths (%d atoms); the prepend group\n", res.TotalAtoms)
			fmt.Println("  survives here only because its prepending also changed VP3's selection —")
			fmt.Println("  with equal upstream choices it would merge, losing the policy signal.")
		}
	}
}

func methodName(m metrics.FormationMethod) string {
	switch m {
	case metrics.MethodStripBeforeGrouping:
		return "i: strip before grouping"
	case metrics.MethodStripBeforeDistance:
		return "ii: strip before distance"
	default:
		return "iii: unique-AS count, adopted"
	}
}
