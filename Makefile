GO ?= go

.PHONY: build test lint bench bench-all verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: the stdlib-only atomlint suite (cmd/atomlint).
lint:
	$(GO) run ./cmd/atomlint ./...

# Key benchmarks, distilled into BENCH_pr3.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# The full benchmark sweep (one per table/figure; slow).
bench-all:
	$(GO) test -bench . -benchmem ./...

# Full pre-merge check: vet + atomlint + build + tests + race and fuzz
# smokes.
verify:
	sh scripts/verify.sh
