GO ?= go

.PHONY: build test lint bench bench-all verify fuzz-corpus golden-update atomd-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: the stdlib-only atomlint suite (cmd/atomlint) —
# determinism, hotpath, wiresafety, locks, aliasing, lifecycle.
lint:
	$(GO) run ./cmd/atomlint ./...

# Key benchmarks (native GOMAXPROCS plus a -cpu 8 rerun of the RunTrend
# matrix), distilled into BENCH_pr10.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# The full benchmark sweep (one per table/figure; slow).
bench-all:
	$(GO) test -bench . -benchmem ./...

# Full pre-merge check: vet + atomlint + build + tests + race smokes
# (including the fault-injection harness) + live observability smoke +
# coverage floors + fuzz smokes. Coverage profiles land in coverage/.
verify:
	sh scripts/verify.sh

# Regenerate the checked-in fuzz seed corpora from faultgen-damaged
# archives (deterministic; see scripts/fuzzcorpus.go).
fuzz-corpus:
	$(GO) run scripts/fuzzcorpus.go

# Re-pin the golden end-to-end fixture (testdata/golden/).
golden-update:
	$(GO) test -run TestGolden -update .

# Operator-facing smoke of the streaming daemon: boot cmd/atomd over
# the golden RIBs, ingest the golden updates over TCP, query HTTP and
# the binary port live, SIGTERM, demand a clean drain.
atomd-smoke:
	$(GO) run scripts/atomdsmoke.go
