GO ?= go

.PHONY: build test bench bench-all verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Key benchmarks, distilled into BENCH_pr3.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# The full benchmark sweep (one per table/figure; slow).
bench-all:
	$(GO) test -bench . -benchmem ./...

# Full pre-merge check: vet + build + tests + race smoke.
verify:
	sh scripts/verify.sh
