GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem

# Full pre-merge check: vet + build + tests + race smoke.
verify:
	sh scripts/verify.sh
