GO ?= go

.PHONY: build test lint bench bench-all verify fuzz-corpus golden-update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: the stdlib-only atomlint suite (cmd/atomlint) —
# determinism, hotpath, wiresafety, locks, aliasing, lifecycle.
lint:
	$(GO) run ./cmd/atomlint ./...

# Key benchmarks (native GOMAXPROCS plus a -cpu 8 rerun of the RunTrend
# matrix), distilled into BENCH_pr6.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# The full benchmark sweep (one per table/figure; slow).
bench-all:
	$(GO) test -bench . -benchmem ./...

# Full pre-merge check: vet + atomlint + build + tests + race smokes
# (including the fault-injection harness) + live observability smoke +
# coverage floors + fuzz smokes. Coverage profiles land in coverage/.
verify:
	sh scripts/verify.sh

# Regenerate the checked-in fuzz seed corpora from faultgen-damaged
# archives (deterministic; see scripts/fuzzcorpus.go).
fuzz-corpus:
	$(GO) run scripts/fuzzcorpus.go

# Re-pin the golden end-to-end fixture (testdata/golden/).
golden-update:
	$(GO) test -run TestGolden -update .
